// Metric registry semantics, including the concurrency contract the hot
// path relies on: N threads hammering the same counter/histogram sum
// exactly, with no lost updates (run under TSan in CI to also prove the
// update path is race-free).
#include "telemetry/registry.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace bigmap::telemetry {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.get(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.get(), 42u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  g.set(10);
  g.set(3);
  EXPECT_EQ(g.get(), 3u);
}

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  // Values at and above 2^63 clamp into the last bucket.
  EXPECT_EQ(Histogram::bucket_of(u64{1} << 63), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_of(~u64{0}), Histogram::kBuckets - 1);
}

TEST(HistogramTest, BucketMinInvertsBucketOf) {
  for (usize i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_min(i)), i) << i;
  }
}

TEST(HistogramTest, RecordsCountAndSum) {
  Histogram h;
  h.record(0);
  h.record(5);
  h.record(5);
  h.record(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1010u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(Histogram::bucket_of(5)), 2u);
  EXPECT_EQ(h.bucket(Histogram::bucket_of(1000)), 1u);
}

TEST(RegistryTest, GetOrCreateReturnsSameObject) {
  MetricRegistry reg;
  Counter& a = reg.counter("execs");
  Counter& b = reg.counter("execs");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.get(), 7u);
}

TEST(RegistryTest, DistinctNamesAreDistinctMetrics) {
  MetricRegistry reg;
  reg.counter("a").add(1);
  reg.counter("b").add(2);
  EXPECT_EQ(reg.counter("a").get(), 1u);
  EXPECT_EQ(reg.counter("b").get(), 2u);
}

TEST(RegistryTest, SnapshotsAreNameSorted) {
  MetricRegistry reg;
  reg.counter("zebra").add(1);
  reg.counter("alpha").add(2);
  reg.gauge("mid").set(3);
  auto counters = reg.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "alpha");
  EXPECT_EQ(counters[1].first, "zebra");
  auto gauges = reg.gauges();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].second, 3u);
}

TEST(RegistryTest, HistogramViewAggregates) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("lat");
  h.record(1);
  h.record(100);
  auto views = reg.histograms();
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].name, "lat");
  EXPECT_EQ(views[0].count, 2u);
  EXPECT_EQ(views[0].sum, 101u);
}

// --- concurrency: updates from N threads must sum exactly -------------------

TEST(RegistryConcurrencyTest, CounterAddsFromManyThreadsSumExactly) {
  constexpr int kThreads = 8;
  constexpr u64 kPerThread = 20000;
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (u64 i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.get(), kThreads * kPerThread);
}

TEST(RegistryConcurrencyTest, HistogramRecordsFromManyThreadsSumExactly) {
  constexpr int kThreads = 8;
  constexpr u64 kPerThread = 10000;
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (u64 i = 0; i < kPerThread; ++i) {
        h.record(static_cast<u64>(t) * 17 + (i % 5));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  u64 expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (u64 i = 0; i < kPerThread; ++i) {
      expected_sum += static_cast<u64>(t) * 17 + (i % 5);
    }
  }
  EXPECT_EQ(h.sum(), expected_sum);
}

TEST(RegistryConcurrencyTest, ConcurrentGetOrCreateIsSafe) {
  // Threads race registration of overlapping names while others update;
  // every add must land on the one shared counter per name.
  constexpr int kThreads = 8;
  constexpr int kNames = 4;
  constexpr u64 kPerThread = 5000;
  MetricRegistry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      const std::string name = "m" + std::to_string(t % kNames);
      Counter& c = reg.counter(name);
      for (u64 i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& th : threads) th.join();
  u64 total = 0;
  for (const auto& [name, v] : reg.counters()) total += v;
  EXPECT_EQ(total, kThreads * kPerThread);
  EXPECT_EQ(reg.counters().size(), kNames);
}

}  // namespace
}  // namespace bigmap::telemetry
