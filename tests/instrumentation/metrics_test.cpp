// Tests for block-ID assignment and the coverage metrics.
#include "instrumentation/metrics.h"

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

namespace bigmap {
namespace {

TEST(BlockIdTableTest, DeterministicAndInRange) {
  BlockIdTable a(1000, 1u << 16, 7);
  BlockIdTable b(1000, 1u << 16, 7);
  for (u32 i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.id(i), b.id(i));
    EXPECT_LT(a.id(i), 1u << 16);
  }
}

TEST(BlockIdTableTest, SeedChangesAssignment) {
  BlockIdTable a(1000, 1u << 16, 7);
  BlockIdTable b(1000, 1u << 16, 8);
  usize diffs = 0;
  for (u32 i = 0; i < 1000; ++i) diffs += (a.id(i) != b.id(i));
  EXPECT_GT(diffs, 900u);
}

TEST(BlockIdTableTest, CollisionsMatchBirthdayExpectation) {
  // With 1000 blocks in a 64k space, some ID collisions are expected —
  // that is the premise of the paper. Verify they occur but are few.
  BlockIdTable t(1000, 1u << 16, 3);
  std::unordered_set<u32> ids;
  for (u32 i = 0; i < 1000; ++i) ids.insert(t.id(i));
  EXPECT_LT(ids.size(), 1000u);  // at least one collision (overwhelmingly)
  EXPECT_GT(ids.size(), 950u);   // but only a few
}

TEST(EdgeMetricTest, ImplementsListingOneFormula) {
  BlockIdTable ids(4, 1u << 16, 1);
  EdgeMetric m(ids);
  m.begin_execution();
  // First block: prev = 0.
  EXPECT_EQ(m.visit(2), (0u >> 1) ^ ids.id(2));
  // Second block: E = (B_prev >> 1) ^ B_cur.
  EXPECT_EQ(m.visit(3), (ids.id(2) >> 1) ^ ids.id(3));
}

TEST(EdgeMetricTest, DirectionalityPreserved) {
  // E_xy != E_yx thanks to the shift (§II-A2).
  BlockIdTable ids(2, 1u << 16, 5);
  EdgeMetric m(ids);
  m.begin_execution();
  m.visit(0);
  const u32 e01 = m.visit(1);
  m.begin_execution();
  m.visit(1);
  const u32 e10 = m.visit(0);
  EXPECT_NE(e01, e10);
}

TEST(EdgeMetricTest, SelfLoopsDistinct) {
  // E_xx != E_yy != 0 (§II-A2).
  BlockIdTable ids(2, 1u << 16, 9);
  EdgeMetric m(ids);
  m.begin_execution();
  m.visit(0);
  const u32 e00 = m.visit(0);
  m.begin_execution();
  m.visit(1);
  const u32 e11 = m.visit(1);
  EXPECT_NE(e00, e11);
  EXPECT_NE(e00, 0u);
  EXPECT_NE(e11, 0u);
}

TEST(EdgeMetricTest, BeginExecutionResetsPrev) {
  BlockIdTable ids(3, 1u << 16, 2);
  EdgeMetric m(ids);
  m.begin_execution();
  const u32 first_a = m.visit(1);
  m.visit(2);
  m.begin_execution();
  const u32 first_b = m.visit(1);
  EXPECT_EQ(first_a, first_b);
}

TEST(NGramMetricTest, DependsOnLastNBlocks) {
  BlockIdTable ids(8, 1u << 16, 4);
  NGramMetric<3> m(ids);

  // Key after path a->b->c differs from d->b->c (3-gram context).
  m.begin_execution();
  m.visit(0);
  m.visit(1);
  const u32 k_abc = m.visit(2);

  m.begin_execution();
  m.visit(3);
  m.visit(1);
  const u32 k_dbc = m.visit(2);
  EXPECT_NE(k_abc, k_dbc);
}

TEST(NGramMetricTest, BlocksBeyondWindowIgnored) {
  BlockIdTable ids(8, 1u << 16, 4);
  NGramMetric<3> m(ids);

  m.begin_execution();
  m.visit(5);  // will fall out of the window
  m.visit(0);
  m.visit(1);
  const u32 a = m.visit(2);

  m.begin_execution();
  m.visit(6);  // different, but also out of window
  m.visit(0);
  m.visit(1);
  const u32 b = m.visit(2);
  EXPECT_EQ(a, b);
}

TEST(NGramMetricTest, OrderSensitive) {
  BlockIdTable ids(8, 1u << 16, 4);
  NGramMetric<3> m(ids);
  m.begin_execution();
  m.visit(0);
  m.visit(1);
  const u32 k012 = m.visit(2);
  m.begin_execution();
  m.visit(1);
  m.visit(0);
  const u32 k102 = m.visit(2);
  EXPECT_NE(k012, k102);
}

TEST(NGramMetricTest, ProducesMoreDistinctKeysThanEdge) {
  // The paper's composition rationale: N-gram exerts higher map pressure
  // than plain edge coverage on the same trace set.
  BlockIdTable ids(16, 1u << 20, 11);
  EdgeMetric em(ids);
  NGramMetric<3> nm(ids);

  std::unordered_set<u32> edge_keys, ngram_keys;
  // Walk many short random-ish paths over 16 blocks.
  u32 state = 12345;
  for (int path = 0; path < 200; ++path) {
    em.begin_execution();
    nm.begin_execution();
    for (int step = 0; step < 6; ++step) {
      state = state * 1103515245 + 12345;
      const u32 block = (state >> 16) % 16;
      edge_keys.insert(em.visit(block));
      ngram_keys.insert(nm.visit(block));
    }
  }
  EXPECT_GT(ngram_keys.size(), edge_keys.size());
}

TEST(ContextMetricTest, SameEdgeDifferentContextDifferentKey) {
  BlockIdTable ids(8, 1u << 16, 6);
  ContextMetric m(ids);

  m.begin_execution();
  m.on_call(5);
  m.visit(0);
  const u32 in_ctx5 = m.visit(1);

  m.begin_execution();
  m.on_call(6);
  m.visit(0);
  const u32 in_ctx6 = m.visit(1);
  EXPECT_NE(in_ctx5, in_ctx6);
}

TEST(ContextMetricTest, ReturnRestoresContext) {
  BlockIdTable ids(8, 1u << 16, 6);
  ContextMetric m(ids);

  m.begin_execution();
  m.visit(0);
  const u32 base_key = m.visit(1);

  m.begin_execution();
  m.visit(0);
  m.on_call(5);
  m.on_return();
  const u32 after_call = m.visit(1);
  EXPECT_EQ(base_key, after_call);
}

TEST(ContextMetricTest, UnbalancedReturnIsSafe) {
  BlockIdTable ids(4, 1u << 16, 6);
  ContextMetric m(ids);
  m.begin_execution();
  m.on_return();  // stack empty: must not crash
  m.on_return();
  EXPECT_NO_FATAL_FAILURE(m.visit(0));
}

TEST(MetricNameTest, AllNamed) {
  EXPECT_STREQ(metric_name(MetricKind::kEdge), "edge");
  EXPECT_STREQ(metric_name(MetricKind::kNGram), "ngram3");
  EXPECT_STREQ(metric_name(MetricKind::kNGram2), "ngram2");
  EXPECT_STREQ(metric_name(MetricKind::kNGram8), "ngram8");
  EXPECT_STREQ(metric_name(MetricKind::kContext), "context");
}

}  // namespace
}  // namespace bigmap
