// Tests for the CollAFL-style static edge assignment.
#include "analysis/collafl.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "target/generator.h"

namespace bigmap {
namespace {

Program small_cfg() {
  Program p;
  p.blocks.resize(4);
  p.blocks[0].kind = BlockKind::kBranch;
  p.blocks[0].targets = {1, 2};
  p.blocks[1].kind = BlockKind::kFallthrough;
  p.blocks[1].targets = {3};
  p.blocks[2].kind = BlockKind::kFallthrough;
  p.blocks[2].targets = {3};
  p.blocks[3].kind = BlockKind::kExit;
  p.validate();
  return p;
}

TEST(CollAflTest, AssignsUniqueSlotsWhenMapFits) {
  Program p = small_cfg();
  CollAflAssignment a(p, 64);
  EXPECT_EQ(a.num_static_edges(), 4u);
  EXPECT_EQ(a.uniquely_assigned(), 4u);
  EXPECT_EQ(a.hashed_fallback(), 0u);

  std::unordered_set<u32> slots;
  slots.insert(a.slot(0, 1));
  slots.insert(a.slot(0, 2));
  slots.insert(a.slot(1, 3));
  slots.insert(a.slot(2, 3));
  EXPECT_EQ(slots.size(), 4u);  // collision-free
  for (u32 s : slots) EXPECT_LT(s, 64u);
}

TEST(CollAflTest, UnknownEdgesHashIntoMap) {
  Program p = small_cfg();
  CollAflAssignment a(p, 64);
  const u32 s = a.slot(3, 0);  // not a static edge
  EXPECT_LT(s, 64u);
}

TEST(CollAflTest, OverflowFallsBackToHashing) {
  Program p = small_cfg();
  CollAflAssignment a(p, 2);  // room for only 2 of 4 edges
  EXPECT_EQ(a.uniquely_assigned(), 2u);
  EXPECT_EQ(a.hashed_fallback(), 2u);
  EXPECT_LT(a.slot(1, 3), 2u + 0x100000000ULL);  // in-range either way
}

TEST(CollAflTest, RequiredMapSizeIsNextPowerOfTwo) {
  Program p = small_cfg();
  EXPECT_EQ(CollAflAssignment::required_map_size(p), 4u);

  GeneratorParams gp;
  gp.seed = 4;
  gp.live_blocks = 1000;
  auto t = generate_target(gp);
  const usize req = CollAflAssignment::required_map_size(t.program);
  EXPECT_GE(req, t.program.static_edge_count() / 2);  // duplicates collapse
  EXPECT_EQ(req & (req - 1), 0u);  // power of two
}

TEST(CollAflTest, ZeroCollisionsOnGeneratedTarget) {
  GeneratorParams gp;
  gp.seed = 6;
  gp.live_blocks = 800;
  auto t = generate_target(gp);
  const usize req = CollAflAssignment::required_map_size(t.program);
  CollAflAssignment a(t.program, req);
  EXPECT_EQ(a.hashed_fallback(), 0u);

  // Every static edge maps to a distinct slot.
  std::unordered_set<u32> slots;
  usize edges = 0;
  for (u32 b = 0; b < t.program.blocks.size(); ++b) {
    std::unordered_set<u32> seen_targets;
    for (u32 tgt : t.program.blocks[b].targets) {
      if (!seen_targets.insert(tgt).second) continue;
      slots.insert(a.slot(b, tgt));
      ++edges;
    }
  }
  EXPECT_EQ(slots.size(), edges);
}

TEST(CollAflTest, DeterministicAssignment) {
  Program p = small_cfg();
  CollAflAssignment a(p, 64), b(p, 64);
  EXPECT_EQ(a.slot(0, 1), b.slot(0, 1));
  EXPECT_EQ(a.slot(2, 3), b.slot(2, 3));
}

}  // namespace
}  // namespace bigmap
