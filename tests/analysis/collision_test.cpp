// Tests for the collision-rate analytics (Equation 1, birthday bounds).
#include "analysis/collision.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bigmap {
namespace {

TEST(CollisionRateTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(collision_rate(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(collision_rate(1024, 0), 0.0);
  // One draw can never collide.
  EXPECT_NEAR(collision_rate(1024, 1), 0.0, 1e-12);
}

TEST(CollisionRateTest, MonotoneInKeys) {
  double prev = 0.0;
  for (double n = 100; n <= 100000; n *= 2) {
    const double r = collision_rate(65536, n);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(CollisionRateTest, MonotoneDecreasingInHashSpace) {
  double prev = 1.0;
  for (double h = 65536; h <= 32.0 * 1024 * 1024; h *= 2) {
    const double r = collision_rate(h, 50000);
    EXPECT_LE(r, prev);
    prev = r;
  }
}

TEST(CollisionRateTest, PaperTableTwoValues) {
  // Table II's "Collision rate (%)" column is Equation 1 with H = 64k and
  // n = discovered edges. Verify several rows.
  EXPECT_NEAR(collision_rate(65536, 722) * 100, 0.55, 0.02);
  EXPECT_NEAR(collision_rate(65536, 1218) * 100, 0.92, 0.02);
  EXPECT_NEAR(collision_rate(65536, 5377) * 100, 3.99, 0.05);
  EXPECT_NEAR(collision_rate(65536, 10297) * 100, 7.46, 0.08);
  EXPECT_NEAR(collision_rate(65536, 40948) * 100, 25.64, 0.2);
  EXPECT_NEAR(collision_rate(65536, 131677) * 100, 56.90, 0.3);
}

TEST(CollisionRateTest, PaperSection3Claim) {
  // §III: "a 64kB map is subjected to ~30% collision rate" for ~50k keys.
  const double r = collision_rate(65536, 50000) * 100;
  EXPECT_GT(r, 25.0);
  EXPECT_LT(r, 35.0);
}

TEST(CollisionRateTest, AgreesWithMonteCarlo) {
  for (const auto& [h, n] : {std::pair<u64, u64>{1u << 16, 5000},
                             {1u << 20, 50000},
                             {1u << 16, 60000}}) {
    const double analytic = collision_rate(static_cast<double>(h),
                                           static_cast<double>(n));
    const double empirical = monte_carlo_collision_rate(h, n, 42, 5);
    EXPECT_NEAR(analytic, empirical, 0.01)
        << "H=" << h << " n=" << n;
  }
}

TEST(ExpectedDistinctTest, ComplementOfCollisionRate) {
  // collision_rate == 1 - expected_distinct / n by construction.
  for (double n : {100.0, 5000.0, 100000.0}) {
    const double rate = collision_rate(65536, n);
    const double distinct = expected_distinct_keys(65536, n);
    EXPECT_NEAR(rate, 1.0 - distinct / n, 1e-9);
  }
}

TEST(ExpectedDistinctTest, BoundedByHashSpaceAndKeys) {
  EXPECT_LE(expected_distinct_keys(1024, 1e9), 1024.0 + 1e-6);
  EXPECT_LE(expected_distinct_keys(1u << 20, 100), 100.0 + 1e-6);
}

TEST(BirthdayTest, KnownClassicValue) {
  // 23 people, 365 days: ~50.7%.
  EXPECT_NEAR(birthday_collision_probability(365, 23), 0.507, 0.002);
}

TEST(BirthdayTest, PaperSection3Claim300Ids) {
  // §III: "the probability of having at least one collision is ~50% after
  // assigning only 300 IDs" in a 64 kB map.
  const double p = birthday_collision_probability(65536, 300);
  EXPECT_GT(p, 0.45);
  EXPECT_LT(p, 0.55);
  // And the solver finds n near 300 for p = 0.5.
  const u64 n = keys_for_collision_probability(65536, 0.5);
  EXPECT_GT(n, 280u);
  EXPECT_LT(n, 320u);
}

TEST(BirthdayTest, Extremes) {
  EXPECT_DOUBLE_EQ(birthday_collision_probability(100, 1), 0.0);
  EXPECT_DOUBLE_EQ(birthday_collision_probability(100, 101), 1.0);
  // Far past the space: certain collision (pigeonhole).
  EXPECT_DOUBLE_EQ(birthday_collision_probability(10, 1000), 1.0);
}

TEST(KeysForProbabilityTest, MonotoneInTarget) {
  const u64 n25 = keys_for_collision_probability(1u << 16, 0.25);
  const u64 n50 = keys_for_collision_probability(1u << 16, 0.50);
  const u64 n90 = keys_for_collision_probability(1u << 16, 0.90);
  EXPECT_LT(n25, n50);
  EXPECT_LT(n50, n90);
}

TEST(MonteCarloTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(monte_carlo_collision_rate(0, 100, 1), 0.0);
  EXPECT_DOUBLE_EQ(monte_carlo_collision_rate(100, 0, 1), 0.0);
  // H == 1: every draw after the first collides -> rate (n-1)/n.
  EXPECT_NEAR(monte_carlo_collision_rate(1, 100, 1), 0.99, 1e-9);
}

// Figure 2 sweep: the full grid must be finite, in [0, 1), and ordered.
class Fig2GridTest : public ::testing::TestWithParam<u64> {};

TEST_P(Fig2GridTest, RowIsOrderedAcrossMapSizes) {
  const u64 keys = GetParam();
  double prev = 1.1;
  for (u64 map = 1u << 16; map <= (32u << 20); map <<= 1) {
    const double r = collision_rate(static_cast<double>(map),
                                    static_cast<double>(keys));
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1.0);
    EXPECT_LE(r, prev);
    prev = r;
  }
}

INSTANTIATE_TEST_SUITE_P(KeyCounts, Fig2GridTest,
                         ::testing::Values(5000, 10000, 20000, 50000, 100000,
                                           200000, 500000, 1000000));

}  // namespace
}  // namespace bigmap
