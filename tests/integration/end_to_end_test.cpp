// Integration tests spanning the whole stack: suite profiles -> generator
// -> (laf-intel) -> metrics -> executor -> campaign -> analysis. These are
// scaled-down versions of the paper's experiments asserting the *shape*
// results the benches print.
#include <gtest/gtest.h>

#include "analysis/collision.h"
#include "fuzzer/campaign.h"
#include "target/lafintel.h"
#include "target/suite.h"

namespace bigmap {
namespace {

CampaignConfig config_for(MapScheme scheme, usize map_size, u64 execs) {
  CampaignConfig c;
  c.scheme = scheme;
  c.map.map_size = map_size;
  c.max_execs = execs;
  c.seed = 17;
  return c;
}

TEST(EndToEndTest, ThroughputShapeOnZlib) {
  // Mini Figure 6: same exec budget; BigMap's wall time must stay nearly
  // flat from 64kB to 8MB while the flat scheme slows dramatically.
  const BenchmarkInfo* info = find_benchmark("zlib");
  ASSERT_NE(info, nullptr);
  auto target = build_benchmark(*info);
  auto seeds = benchmark_seeds(target, *info);

  auto time_of = [&](MapScheme scheme, usize size) {
    auto r = run_campaign(target.program, seeds,
                          config_for(scheme, size, 3000));
    return r.wall_seconds;
  };

  const double flat_small = time_of(MapScheme::kFlat, 1u << 16);
  const double flat_large = time_of(MapScheme::kFlat, 8u << 20);
  const double two_small = time_of(MapScheme::kTwoLevel, 1u << 16);
  const double two_large = time_of(MapScheme::kTwoLevel, 8u << 20);

  EXPECT_GT(flat_large, flat_small * 5) << "flat must degrade with size";
  EXPECT_LT(two_large, two_small * 3) << "two-level must stay flat";
  EXPECT_LT(two_large, flat_large / 4) << "BigMap must win at 8MB";
}

TEST(EndToEndTest, Table2CollisionColumnFromEquation1) {
  // Table II's collision column is Equation 1 applied to the discovered
  // edges; verify on the emulated zlib profile after a short campaign.
  const BenchmarkInfo* info = find_benchmark("zlib");
  auto target = build_benchmark(*info);
  auto seeds = benchmark_seeds(target, *info);

  CampaignConfig c = config_for(MapScheme::kTwoLevel, 2u << 20, 20000);
  c.keep_corpus = true;
  auto r = run_campaign(target.program, seeds, c);
  const u64 edges = measure_corpus_edges(target.program, r.corpus);

  // zlib-scale target: hundreds to ~1.5k edges, sub-2% collision at 64kB.
  EXPECT_GT(edges, 200u);
  EXPECT_LT(edges, 3000u);
  EXPECT_LT(collision_rate(65536.0, static_cast<double>(edges)), 0.04);
}

TEST(EndToEndTest, CompositionIncreasesMapPressure) {
  // §V-C mechanics: laf-intel + N-gram(3) must produce strictly more
  // distinct coverage keys than plain edge coverage on the same target.
  const BenchmarkInfo* info = find_benchmark("zlib");
  auto target = build_benchmark(*info);
  Program laf = apply_laf_intel(target.program);
  auto seeds = benchmark_seeds(target, *info);

  auto plain = run_campaign(target.program, seeds,
                            config_for(MapScheme::kTwoLevel, 2u << 20,
                                       20000));
  CampaignConfig comp_cfg =
      config_for(MapScheme::kTwoLevel, 2u << 20, 20000);
  comp_cfg.metric = MetricKind::kNGram;
  auto composed = run_campaign(laf, seeds, comp_cfg);

  EXPECT_GT(composed.used_key, plain.used_key);
}

TEST(EndToEndTest, CrashTriageConsistentAcrossSchemes) {
  // Ground-truth crash counts must be scheme-independent given the same
  // exec budget (the map scheme changes speed, not what gets explored,
  // modulo feedback collisions — at 2MB collisions are negligible).
  const BenchmarkInfo* info = find_benchmark("bloaty");
  ASSERT_NE(info, nullptr);
  auto target = build_benchmark(*info);
  auto seeds = benchmark_seeds(target, *info);
  if (seeds.size() > 64) seeds.resize(64);

  CampaignConfig flat_cfg = config_for(MapScheme::kFlat, 2u << 20, 30000);
  CampaignConfig two_cfg = config_for(MapScheme::kTwoLevel, 2u << 20, 30000);
  // Step-count scheduling removes wall-clock noise: both schemes then see
  // identical mutation streams and must make identical decisions (the
  // core equivalence property, end to end).
  flat_cfg.deterministic_timing = true;
  two_cfg.deterministic_timing = true;

  auto flat = run_campaign(target.program, seeds, flat_cfg);
  auto two = run_campaign(target.program, seeds, two_cfg);
  EXPECT_EQ(flat.crashes_ground_truth, two.crashes_ground_truth);
  EXPECT_EQ(flat.interesting, two.interesting);
  EXPECT_EQ(flat.corpus_size, two.corpus_size);
}

TEST(EndToEndTest, LafIntelUnlocksDeadRegionEdges) {
  // The 8-byte dead-region gates are unreachable for plain fuzzing but
  // become byte-at-a-time solvable after laf-intel: with enough budget the
  // transformed program's coverage keys should exceed the original's.
  GeneratorParams p;
  p.seed = 99;
  p.live_blocks = 400;
  p.dead_blocks = 400;
  p.frac_wide_cmp = 0.8;
  p.frac_hard_eq = 0.5;
  auto target = generate_target(p);
  Program laf = apply_laf_intel(target.program);
  auto seeds = make_seed_corpus(target, 4, 1);

  auto plain = run_campaign(target.program, seeds,
                            config_for(MapScheme::kTwoLevel, 1u << 20,
                                       60000));
  auto transformed = run_campaign(laf, seeds,
                                  config_for(MapScheme::kTwoLevel, 1u << 20,
                                             60000));
  EXPECT_GT(transformed.used_key, plain.used_key);
}

TEST(EndToEndTest, DeterministicTimingCampaignsFullyReproducible) {
  // Cross-module determinism: suite profile -> seeds -> campaign must be
  // bit-for-bit reproducible with deterministic timing.
  const BenchmarkInfo* info = find_benchmark("proj4");
  auto target = build_benchmark(*info);
  auto seeds = benchmark_seeds(target, *info);

  CampaignConfig c = config_for(MapScheme::kTwoLevel, 1u << 18, 8000);
  c.deterministic_timing = true;
  auto a = run_campaign(target.program, seeds, c);
  auto b = run_campaign(target.program, seeds, c);
  EXPECT_EQ(a.covered_positions, b.covered_positions);
  EXPECT_EQ(a.used_key, b.used_key);
  EXPECT_EQ(a.interesting, b.interesting);
  EXPECT_EQ(a.corpus_size, b.corpus_size);
}

}  // namespace
}  // namespace bigmap
