// Cross-module determinism properties of the execution substrate: the same
// seed + the same input must give the identical block trace, outcome, and
// coverage-map hash across runs, interpreters, and executor instances.
#include <vector>

#include <gtest/gtest.h>

#include "core/flat_map.h"
#include "core/map_options.h"
#include "core/two_level_map.h"
#include "fuzzer/executor.h"
#include "instrumentation/metrics.h"
#include "target/generator.h"
#include "target/interpreter.h"
#include "target/lafintel.h"
#include "util/timing.h"

namespace bigmap {
namespace {

class TargetPropertiesTest : public ::testing::TestWithParam<u64> {};

GeneratorParams params_for(u64 seed) {
  GeneratorParams p;
  p.name = "props";
  p.seed = seed;
  p.live_blocks = 350;
  p.dead_blocks = 80;
  p.num_bugs = 4;
  p.frac_wide_cmp = 0.3;
  return p;
}

TEST_P(TargetPropertiesTest, RegenerationIsBitIdentical) {
  const GeneratedTarget a = generate_target(params_for(GetParam()));
  const GeneratedTarget b = generate_target(params_for(GetParam()));
  ASSERT_EQ(a.program.blocks.size(), b.program.blocks.size());
  EXPECT_EQ(a.program.static_edge_count(), b.program.static_edge_count());
  EXPECT_EQ(a.tokens, b.tokens);
  for (u32 bug = 0; bug < a.program.num_bugs; ++bug) {
    EXPECT_EQ(a.crashing_input(bug), b.crashing_input(bug));
  }
}

TEST_P(TargetPropertiesTest, SameSeedSameInputSameTraceAndOutcome) {
  const GeneratedTarget target = generate_target(params_for(GetParam()));
  const auto corpus = make_seed_corpus(target, 6, GetParam());
  Interpreter a(1u << 16);
  Interpreter b(1u << 16);
  for (const auto& input : corpus) {
    std::vector<u32> trace_a, trace_b;
    const ExecResult ra =
        a.run(target.program, input, [&](u32 blk) { trace_a.push_back(blk); });
    const ExecResult rb =
        b.run(target.program, input, [&](u32 blk) { trace_b.push_back(blk); });
    EXPECT_EQ(trace_a, trace_b);
    EXPECT_EQ(static_cast<int>(ra.outcome), static_cast<int>(rb.outcome));
    EXPECT_EQ(ra.steps, rb.steps);
    EXPECT_EQ(ra.bug_id, rb.bug_id);
    EXPECT_EQ(ra.stack_hash, rb.stack_hash);
  }
}

// The same execution must condense to the same classified-map hash in
// independent executor instances, for both map schemes.
template <class Map>
void expect_identical_map_hashes(const GeneratedTarget& target, u64 seed) {
  MapOptions opts;
  opts.map_size = 1u << 16;
  const BlockIdTable ids(target.program.blocks.size(), opts.map_size, seed);
  Executor<Map, EdgeMetric> ex_a(target.program, opts, ids, 1u << 16);
  Executor<Map, EdgeMetric> ex_b(target.program, opts, ids, 1u << 16);
  OpTimeBreakdown timing;
  for (const auto& input : make_seed_corpus(target, 6, seed)) {
    const auto ra = ex_a.run_for_hash(input, timing);
    const auto rb = ex_b.run_for_hash(input, timing);
    EXPECT_EQ(ra.hash, rb.hash);
    EXPECT_EQ(static_cast<int>(ra.exec.outcome),
              static_cast<int>(rb.exec.outcome));
  }
}

TEST_P(TargetPropertiesTest, MapHashIsReproducibleAcrossExecutors) {
  const GeneratedTarget target = generate_target(params_for(GetParam()));
  expect_identical_map_hashes<TwoLevelCoverageMap>(target, GetParam());
  expect_identical_map_hashes<FlatCoverageMap>(target, GetParam());
}

TEST_P(TargetPropertiesTest, CrashIdentityIsStableAcrossRuns) {
  const GeneratedTarget target = generate_target(params_for(GetParam()));
  Interpreter interp(1u << 16);
  for (u32 bug = 0; bug < target.program.num_bugs; ++bug) {
    const std::vector<u8> input = target.crashing_input(bug);
    const ExecResult first = interp.run(target.program, input, [](u32) {});
    const ExecResult second = interp.run(target.program, input, [](u32) {});
    ASSERT_TRUE(first.crashed());
    EXPECT_EQ(first.bug_id, second.bug_id);
    EXPECT_EQ(first.faulting_block, second.faulting_block);
    EXPECT_EQ(first.stack_hash, second.stack_hash);
  }
}

TEST_P(TargetPropertiesTest, LafTransformIsDeterministic) {
  const GeneratedTarget target = generate_target(params_for(GetParam()));
  LafIntelStats sa, sb;
  const Program a = apply_laf_intel(target.program, &sa);
  const Program b = apply_laf_intel(target.program, &sb);
  EXPECT_EQ(a.blocks.size(), b.blocks.size());
  EXPECT_EQ(sa.split_compares, sb.split_compares);
  EXPECT_EQ(a.static_edge_count(), b.static_edge_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TargetPropertiesTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace bigmap
