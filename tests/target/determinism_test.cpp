// Interpreter determinism regression: same program + input + budget must
// produce the identical execution in both tracing modes — step counts,
// block sequences, and crash/hang verdicts. Dual-mode fuzzing leans on
// this: an untraced run the oracle never stops must be bit-for-bit the
// execution the traced re-run then performs.
#include "target/interpreter.h"

#include <gtest/gtest.h>

#include <vector>

#include "target/generator.h"

namespace bigmap {
namespace {

GeneratedTarget determinism_target(u64 seed = 7) {
  GeneratorParams p;
  p.name = "determinism-target";
  p.seed = seed;
  p.live_blocks = 150;
  p.num_bugs = 2;
  p.bug_min_depth = 1;
  p.bug_max_depth = 2;
  return generate_target(p);
}

struct Trace {
  ExecResult result;
  std::vector<u32> blocks;
};

Trace run_traced(Interpreter& interp, const Program& prog,
                 const std::vector<u8>& input) {
  Trace t;
  t.result = interp.run(prog, input,
                        [&](u32 block) { t.blocks.push_back(block); });
  return t;
}

template <typename Oracle>
Trace run_untraced(Interpreter& interp, const Program& prog,
                   const std::vector<u8>& input, bool* stopped,
                   Oracle&& oracle) {
  Trace t;
  t.result = interp.run_until(prog, input, stopped, [&](u32 block) {
    t.blocks.push_back(block);
    return oracle(block);
  });
  return t;
}

void expect_identical(const Trace& a, const Trace& b) {
  EXPECT_EQ(a.result.outcome, b.result.outcome);
  EXPECT_EQ(a.result.steps, b.result.steps);
  EXPECT_EQ(a.result.bug_id, b.result.bug_id);
  EXPECT_EQ(a.result.faulting_block, b.result.faulting_block);
  EXPECT_EQ(a.result.stack_hash, b.result.stack_hash);
  EXPECT_EQ(a.blocks, b.blocks);
}

std::vector<std::vector<u8>> probe_inputs(const GeneratedTarget& target) {
  std::vector<std::vector<u8>> inputs = make_seed_corpus(target, 8, 3);
  inputs.push_back({});                        // empty input
  inputs.push_back(std::vector<u8>(64, 0xFF));  // saturated bytes
  for (u32 bug = 0; bug < target.program.num_bugs; ++bug) {
    inputs.push_back(target.crashing_input(bug));
  }
  return inputs;
}

TEST(DeterminismTest, TracedRunsAreRepeatable) {
  GeneratedTarget target = determinism_target();
  Interpreter interp(1u << 14);
  for (const auto& input : probe_inputs(target)) {
    Trace first = run_traced(interp, target.program, input);
    Trace second = run_traced(interp, target.program, input);
    expect_identical(first, second);
    EXPECT_GT(first.result.steps, 0u);
    EXPECT_EQ(first.blocks.size(), first.result.steps);
  }
}

TEST(DeterminismTest, UntracedRunsAreRepeatable) {
  GeneratedTarget target = determinism_target();
  Interpreter interp(1u << 14);
  auto never = [](u32) { return false; };
  for (const auto& input : probe_inputs(target)) {
    bool s1 = true, s2 = true;
    Trace first = run_untraced(interp, target.program, input, &s1, never);
    Trace second = run_untraced(interp, target.program, input, &s2, never);
    EXPECT_FALSE(s1);
    EXPECT_FALSE(s2);
    expect_identical(first, second);
  }
}

// The mode-equivalence cornerstone: a run_until the oracle never stops IS
// the run() execution — identical block stream, step count, and verdict.
TEST(DeterminismTest, UntracedMatchesTracedWhenOracleNeverFires) {
  GeneratedTarget target = determinism_target();
  Interpreter interp(1u << 14);
  for (const auto& input : probe_inputs(target)) {
    Trace traced = run_traced(interp, target.program, input);
    bool stopped = true;
    Trace untraced = run_untraced(interp, target.program, input, &stopped,
                                  [](u32) { return false; });
    EXPECT_FALSE(stopped);
    expect_identical(traced, untraced);
  }
}

TEST(DeterminismTest, OracleStopEndsExecutionAtThatBlock) {
  GeneratedTarget target = determinism_target();
  Interpreter interp(1u << 14);
  const std::vector<u8> input = make_seed_corpus(target, 1, 5)[0];

  Trace full = run_traced(interp, target.program, input);
  ASSERT_GT(full.result.steps, 4u);

  // Stop at the 3rd executed block: exactly 3 steps happen and the stop
  // flag is set; the partial result reports kOk (callers discard it).
  u64 seen = 0;
  bool stopped = false;
  Trace partial =
      run_untraced(interp, target.program, input, &stopped,
                   [&](u32) { return ++seen == 3; });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(partial.result.steps, 3u);
  EXPECT_EQ(partial.result.outcome, ExecResult::Outcome::kOk);
  ASSERT_EQ(partial.blocks.size(), 3u);
  EXPECT_EQ(partial.blocks[0], full.blocks[0]);
  EXPECT_EQ(partial.blocks[1], full.blocks[1]);
  EXPECT_EQ(partial.blocks[2], full.blocks[2]);
}

// A mid-execution oracle stop must leave no residue in the interpreter —
// the very next run (same or different input) is unaffected. This is what
// lets the campaign re-execute a fired input on the same interpreter.
TEST(DeterminismTest, OracleStopLeavesNoResidue) {
  GeneratedTarget target = determinism_target();
  Interpreter interp(1u << 14);
  const auto inputs = probe_inputs(target);

  std::vector<Trace> baseline;
  for (const auto& input : inputs) {
    baseline.push_back(run_traced(interp, target.program, input));
  }

  // Interleave: stop an untraced run after 1 block (possibly mid-call,
  // with live loop counters), then immediately run traced and compare
  // against the clean baseline.
  for (usize i = 0; i < inputs.size(); ++i) {
    bool stopped = false;
    run_untraced(interp, target.program, inputs[i], &stopped,
                 [](u32) { return true; });
    EXPECT_TRUE(stopped);
    Trace after = run_traced(interp, target.program, inputs[i]);
    expect_identical(baseline[i], after);
  }
}

TEST(DeterminismTest, CrashVerdictIdenticalInBothModes) {
  GeneratedTarget target = determinism_target();
  ASSERT_GT(target.program.num_bugs, 0u);
  Interpreter interp(1u << 14);
  for (u32 bug = 0; bug < target.program.num_bugs; ++bug) {
    const std::vector<u8> input = target.crashing_input(bug);
    Trace traced = run_traced(interp, target.program, input);
    ASSERT_EQ(traced.result.outcome, ExecResult::Outcome::kCrash);
    EXPECT_EQ(traced.result.bug_id, bug);

    bool stopped = true;
    Trace untraced = run_untraced(interp, target.program, input, &stopped,
                                  [](u32) { return false; });
    EXPECT_FALSE(stopped);
    expect_identical(traced, untraced);
  }
}

TEST(DeterminismTest, HangVerdictIdenticalInBothModes) {
  GeneratedTarget target = determinism_target();
  const std::vector<u8> input = make_seed_corpus(target, 1, 9)[0];

  // Find the input's natural length, then starve the budget below it so
  // the run deterministically hangs at exactly the budget boundary.
  Interpreter probe(1u << 14);
  Trace full = run_traced(probe, target.program, input);
  ASSERT_EQ(full.result.outcome, ExecResult::Outcome::kOk);
  ASSERT_GT(full.result.steps, 2u);

  Interpreter starved(full.result.steps - 1);
  Trace traced = run_traced(starved, target.program, input);
  EXPECT_EQ(traced.result.outcome, ExecResult::Outcome::kHang);
  EXPECT_EQ(traced.result.steps, full.result.steps - 1);

  bool stopped = true;
  Trace untraced = run_untraced(starved, target.program, input, &stopped,
                                [](u32) { return false; });
  EXPECT_FALSE(stopped);
  expect_identical(traced, untraced);
}

}  // namespace
}  // namespace bigmap
