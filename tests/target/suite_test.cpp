// Table II benchmark registry: 19 calibrated profiles, the LLVM and
// composition subsets, lookup, determinism, and scale calibration.
#include "target/suite.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "target/interpreter.h"

namespace bigmap {
namespace {

TEST(SuiteTest, HasTheNineteenTableTwoProfiles) {
  EXPECT_EQ(full_table2_suite().size(), 19u);
  std::set<std::string> names;
  for (const BenchmarkInfo& info : full_table2_suite()) {
    names.insert(info.name);
  }
  EXPECT_EQ(names.size(), 19u);  // unique
  for (const char* expected :
       {"zlib", "libpng", "proj4", "bloaty", "openssl", "php", "sqlite3",
        "gvn", "instcombine", "licm"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(SuiteTest, LlvmSuiteIsTheTwelvePassHarnesses) {
  EXPECT_EQ(llvm_suite().size(), 12u);
  for (const BenchmarkInfo& info : llvm_suite()) {
    EXPECT_EQ(info.version.rfind("LLVM", 0), 0u) << info.name;
  }
}

TEST(SuiteTest, CompositionSuiteMirrorsTheLlvmHarnesses) {
  EXPECT_EQ(composition_suite().size(), 12u);
  for (const BenchmarkInfo& info : composition_suite()) {
    ASSERT_GT(info.name.size(), 5u);
    EXPECT_EQ(info.name.substr(info.name.size() - 5), "+comp") << info.name;
    // Denser splittable material than the base profile.
    EXPECT_GE(info.gen.frac_wide_cmp, 0.5);
  }
  EXPECT_NE(find_benchmark("gvn+comp"), nullptr);
}

TEST(SuiteTest, FindBenchmarkLooksUpAllSuites) {
  const BenchmarkInfo* zlib = find_benchmark("zlib");
  ASSERT_NE(zlib, nullptr);
  EXPECT_EQ(zlib->name, "zlib");
  EXPECT_GT(zlib->num_seeds, 0u);
  ASSERT_NE(find_benchmark("instcombine+comp"), nullptr);
  EXPECT_EQ(find_benchmark("definitely-not-a-benchmark"), nullptr);
}

TEST(SuiteTest, PaperColumnsAreOrderedLikeTableTwo) {
  // Discovered edges ascend from zlib to instcombine.
  u64 prev = 0;
  for (const BenchmarkInfo& info : full_table2_suite()) {
    EXPECT_GT(info.paper_discovered_edges, prev) << info.name;
    prev = info.paper_discovered_edges;
  }
  EXPECT_EQ(full_table2_suite().front().name, "zlib");
  EXPECT_EQ(full_table2_suite().back().name, "instcombine");
  // ≈0.7k–131k discoverable edges, as in the paper.
  EXPECT_LT(full_table2_suite().front().paper_discovered_edges, 1000u);
  EXPECT_GT(full_table2_suite().back().paper_discovered_edges, 100000u);
}

TEST(SuiteTest, BuildBenchmarkIsDeterministic) {
  const BenchmarkInfo* info = find_benchmark("zlib");
  ASSERT_NE(info, nullptr);
  const GeneratedTarget a = build_benchmark(*info);
  const GeneratedTarget b = build_benchmark(*info);
  EXPECT_EQ(a.program.blocks.size(), b.program.blocks.size());
  EXPECT_EQ(a.program.static_edge_count(), b.program.static_edge_count());
  EXPECT_EQ(a.tokens, b.tokens);
}

TEST(SuiteTest, BenchmarkSeedsMatchTheProfile) {
  const BenchmarkInfo* info = find_benchmark("proj4");
  ASSERT_NE(info, nullptr);
  const GeneratedTarget target = build_benchmark(*info);
  const auto seeds = benchmark_seeds(target, *info);
  ASSERT_EQ(seeds.size(), info->num_seeds);
  for (const auto& seed : seeds) {
    EXPECT_EQ(seed.size(), target.program.nominal_input_size);
  }
  EXPECT_EQ(benchmark_seeds(target, *info), seeds);  // deterministic
}

TEST(SuiteTest, ProfileScaleTracksThePaperOrdering) {
  const usize zlib_edges =
      build_benchmark(*find_benchmark("zlib")).program.static_edge_count();
  const usize gvn_edges =
      build_benchmark(*find_benchmark("gvn")).program.static_edge_count();
  const usize instcombine_edges =
      build_benchmark(*find_benchmark("instcombine"))
          .program.static_edge_count();
  EXPECT_LT(zlib_edges, gvn_edges);
  EXPECT_LT(gvn_edges, instcombine_edges);
  EXPECT_GT(instcombine_edges, 20000u);
}

TEST(SuiteTest, EveryProfileBuildsValidatesAndRunsItsSeeds) {
  for (const BenchmarkInfo& info : full_table2_suite()) {
    const GeneratedTarget target = build_benchmark(info);
    EXPECT_NO_THROW(target.program.validate()) << info.name;
    EXPECT_EQ(target.program.num_bugs, info.gen.num_bugs) << info.name;
    // The first few seeds execute without hanging on the default budget.
    Interpreter interp(1u << 16);
    const auto seeds = benchmark_seeds(target, info);
    for (usize i = 0; i < 3 && i < seeds.size(); ++i) {
      const ExecResult res = interp.run(target.program, seeds[i], [](u32) {});
      EXPECT_FALSE(res.hung()) << info.name << " seed " << i;
    }
  }
}

}  // namespace
}  // namespace bigmap
