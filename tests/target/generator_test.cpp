// Synthetic-benchmark generator: determinism, structural validity, planted
// bug reachability, dead regions, dictionaries, and seed corpora.
#include "target/generator.h"

#include <vector>

#include <gtest/gtest.h>

#include "target/interpreter.h"

namespace bigmap {
namespace {

GeneratorParams small_params(u64 seed = 1) {
  GeneratorParams p;
  p.name = "gen-test";
  p.seed = seed;
  p.live_blocks = 300;
  p.num_bugs = 5;
  p.bug_min_depth = 1;
  p.bug_max_depth = 3;
  return p;
}

bool programs_identical(const Program& a, const Program& b) {
  if (a.blocks.size() != b.blocks.size()) return false;
  for (usize i = 0; i < a.blocks.size(); ++i) {
    const Block& x = a.blocks[i];
    const Block& y = b.blocks[i];
    if (x.kind != y.kind || x.pred != y.pred || x.cmp_width != y.cmp_width ||
        x.input_offset != y.input_offset || x.expected != y.expected ||
        x.loop_max != y.loop_max || x.bug_id != y.bug_id ||
        x.targets != y.targets || x.cases != y.cases || x.str != y.str) {
      return false;
    }
  }
  return a.num_bugs == b.num_bugs &&
         a.nominal_input_size == b.nominal_input_size;
}

TEST(GeneratorTest, SameParamsProduceIdenticalPrograms) {
  const GeneratedTarget a = generate_target(small_params());
  const GeneratedTarget b = generate_target(small_params());
  EXPECT_TRUE(programs_identical(a.program, b.program));
  EXPECT_EQ(a.tokens, b.tokens);
  EXPECT_EQ(a.bug_recipes.size(), b.bug_recipes.size());
}

TEST(GeneratorTest, DifferentSeedsProduceDifferentPrograms) {
  const GeneratedTarget a = generate_target(small_params(1));
  const GeneratedTarget b = generate_target(small_params(2));
  EXPECT_FALSE(programs_identical(a.program, b.program));
}

TEST(GeneratorTest, GeneratedProgramsValidate) {
  for (u64 seed = 1; seed <= 8; ++seed) {
    const GeneratedTarget t = generate_target(small_params(seed));
    EXPECT_NO_THROW(t.program.validate()) << "seed " << seed;
    EXPECT_GE(t.program.blocks.size(), 300u);
  }
}

TEST(GeneratorTest, PlantsExactlyTheRequestedBugs) {
  const GeneratedTarget t = generate_target(small_params());
  EXPECT_EQ(t.program.num_bugs, 5u);
  usize bug_blocks = 0;
  for (const Block& b : t.program.blocks) {
    if (b.kind == BlockKind::kBug) ++bug_blocks;
  }
  EXPECT_EQ(bug_blocks, 5u);
  EXPECT_EQ(t.bug_recipes.size(), 5u);
}

TEST(GeneratorTest, CrashingInputsReachTheirBugs) {
  const GeneratedTarget t = generate_target(small_params());
  Interpreter interp(1u << 16);
  for (u32 bug = 0; bug < t.program.num_bugs; ++bug) {
    const std::vector<u8> input = t.crashing_input(bug);
    const ExecResult res = interp.run(t.program, input, [](u32) {});
    EXPECT_TRUE(res.crashed()) << "bug " << bug;
    EXPECT_EQ(res.bug_id, bug);
  }
}

TEST(GeneratorTest, ZeroInputRunsCleanly) {
  const GeneratedTarget t = generate_target(small_params());
  Interpreter interp(1u << 16);
  const std::vector<u8> zero(t.program.nominal_input_size, 0);
  const ExecResult res = interp.run(t.program, zero, [](u32) {});
  EXPECT_EQ(res.outcome, ExecResult::Outcome::kOk);
}

TEST(GeneratorTest, DeadBlocksAddStaticEdges) {
  GeneratorParams live_only = small_params();
  live_only.num_bugs = 0;
  GeneratorParams with_dead = live_only;
  with_dead.dead_blocks = 200;
  const usize live_edges =
      generate_target(live_only).program.static_edge_count();
  const usize dead_edges =
      generate_target(with_dead).program.static_edge_count();
  EXPECT_GT(dead_edges, live_edges);
}

TEST(GeneratorTest, DictionaryHoldsMultiByteTokens) {
  GeneratorParams p = small_params();
  p.frac_wide_cmp = 0.5;
  p.frac_hard_eq = 0.8;
  p.frac_strcmp = 0.2;
  const GeneratedTarget t = generate_target(p);
  ASSERT_FALSE(t.dictionary().empty());
  for (const auto& token : t.dictionary()) {
    EXPECT_GE(token.size(), 2u);
    EXPECT_LE(token.size(), 8u);
  }
}

TEST(GeneratorTest, HintsStayWithinTheInputBuffer) {
  const GeneratedTarget t = generate_target(small_params());
  EXPECT_FALSE(t.hints.empty());
  for (const auto& hint : t.hints) {
    EXPECT_FALSE(hint.bytes.empty());
    EXPECT_LE(hint.offset + hint.bytes.size(), t.program.nominal_input_size);
  }
}

TEST(GeneratorTest, SeedCorpusIsDeterministicAndSized) {
  const GeneratedTarget t = generate_target(small_params());
  const auto a = make_seed_corpus(t, 10, 42);
  const auto b = make_seed_corpus(t, 10, 42);
  const auto c = make_seed_corpus(t, 10, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  ASSERT_EQ(a.size(), 10u);
  for (const auto& seed : a) {
    EXPECT_EQ(seed.size(), t.program.nominal_input_size);
  }
}

TEST(GeneratorTest, SeedsExecuteWithinTheDefaultBudget) {
  const GeneratedTarget t = generate_target(small_params());
  Interpreter interp(1u << 16);
  for (const auto& seed : make_seed_corpus(t, 16, 7)) {
    const ExecResult res = interp.run(t.program, seed, [](u32) {});
    EXPECT_FALSE(res.hung());
    EXPECT_LT(res.steps, interp.step_budget() / 4);
  }
}

TEST(GeneratorTest, LiveBlockBudgetScalesTheProgram) {
  GeneratorParams small = small_params();
  small.num_bugs = 0;
  GeneratorParams big = small;
  big.live_blocks = 3000;
  const usize small_blocks = generate_target(small).program.blocks.size();
  const usize big_blocks = generate_target(big).program.blocks.size();
  EXPECT_GT(big_blocks, small_blocks * 5);
}

}  // namespace
}  // namespace bigmap
