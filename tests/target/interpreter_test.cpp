// Interpreter semantics: branch predicates, wide little-endian reads,
// switches, strcmp gates, input-bounded loops, call/return, planted bugs
// (kCrash with stable identity) and the step-budget hang detector.
#include "target/interpreter.h"

#include <vector>

#include <gtest/gtest.h>

#include "target/program.h"

namespace bigmap {
namespace {

using Trace = std::vector<u32>;

ExecResult run_traced(const Program& p, const std::vector<u8>& input,
                      Trace* trace, u64 budget = 1u << 12) {
  Interpreter interp(budget);
  return interp.run(p, input, [&](u32 b) {
    if (trace) trace->push_back(b);
  });
}

// branch(pred) over input[0] vs `expected`: taken -> exit 1, else -> exit 2.
Program branch_program(CmpPred pred, u64 expected, u8 width = 1) {
  Program p;
  p.blocks.resize(3);
  p.blocks[0].kind = BlockKind::kBranch;
  p.blocks[0].pred = pred;
  p.blocks[0].cmp_width = width;
  p.blocks[0].expected = expected;
  p.blocks[0].targets = {1, 2};
  p.blocks[1].kind = BlockKind::kExit;
  p.blocks[2].kind = BlockKind::kExit;
  p.validate();
  return p;
}

bool takes_branch(CmpPred pred, u64 expected, const std::vector<u8>& input,
                  u8 width = 1) {
  Trace trace;
  const ExecResult res =
      run_traced(branch_program(pred, expected, width), input, &trace);
  EXPECT_EQ(res.outcome, ExecResult::Outcome::kOk);
  EXPECT_EQ(trace.size(), 2u);
  return trace[1] == 1;
}

TEST(InterpreterTest, BranchPredicates) {
  EXPECT_TRUE(takes_branch(CmpPred::kEq, 7, {7}));
  EXPECT_FALSE(takes_branch(CmpPred::kEq, 7, {8}));
  EXPECT_TRUE(takes_branch(CmpPred::kNe, 7, {8}));
  EXPECT_FALSE(takes_branch(CmpPred::kNe, 7, {7}));
  EXPECT_TRUE(takes_branch(CmpPred::kLt, 10, {9}));
  EXPECT_FALSE(takes_branch(CmpPred::kLt, 10, {10}));
  EXPECT_TRUE(takes_branch(CmpPred::kLe, 10, {10}));
  EXPECT_TRUE(takes_branch(CmpPred::kGt, 10, {11}));
  EXPECT_FALSE(takes_branch(CmpPred::kGt, 10, {10}));
  EXPECT_TRUE(takes_branch(CmpPred::kGe, 10, {10}));
}

TEST(InterpreterTest, WideCompareReadsLittleEndian) {
  // 0xBEEF little-endian is {0xEF, 0xBE}.
  EXPECT_TRUE(takes_branch(CmpPred::kEq, 0xBEEF, {0xEF, 0xBE}, 2));
  EXPECT_FALSE(takes_branch(CmpPred::kEq, 0xBEEF, {0xBE, 0xEF}, 2));
  EXPECT_TRUE(
      takes_branch(CmpPred::kEq, 0x01020304, {0x04, 0x03, 0x02, 0x01}, 4));
}

TEST(InterpreterTest, BytesPastInputEndReadAsZero) {
  // Empty input: the read value is 0.
  EXPECT_TRUE(takes_branch(CmpPred::kEq, 0, {}));
  EXPECT_FALSE(takes_branch(CmpPred::kEq, 7, {}));
  // Partial wide read: {0x01} as 4 bytes is 0x00000001.
  EXPECT_TRUE(takes_branch(CmpPred::kEq, 0x01, {0x01}, 4));
}

TEST(InterpreterTest, SwitchSelectsMatchingCaseAndDefault) {
  Program p;
  p.blocks.resize(4);
  p.blocks[0].kind = BlockKind::kSwitch;
  p.blocks[0].cases = {5, 9};
  p.blocks[0].targets = {1, 2, 3};
  for (usize i = 1; i < 4; ++i) p.blocks[i].kind = BlockKind::kExit;
  p.validate();

  Trace t1, t2, t3;
  run_traced(p, {5}, &t1);
  run_traced(p, {9}, &t2);
  run_traced(p, {6}, &t3);
  EXPECT_EQ(t1[1], 1u);
  EXPECT_EQ(t2[1], 2u);
  EXPECT_EQ(t3[1], 3u);
}

TEST(InterpreterTest, StrcmpGateComparesBytewise) {
  Program p;
  p.blocks.resize(3);
  p.blocks[0].kind = BlockKind::kStrcmp;
  p.blocks[0].input_offset = 1;
  p.blocks[0].str = {'P', 'N', 'G'};
  p.blocks[0].targets = {1, 2};
  p.blocks[1].kind = BlockKind::kExit;
  p.blocks[2].kind = BlockKind::kExit;
  p.validate();

  Trace hit, miss, shortinput;
  run_traced(p, {0, 'P', 'N', 'G'}, &hit);
  run_traced(p, {0, 'P', 'N', 'X'}, &miss);
  run_traced(p, {0, 'P'}, &shortinput);  // missing bytes read as 0
  EXPECT_EQ(hit[1], 1u);
  EXPECT_EQ(miss[1], 2u);
  EXPECT_EQ(shortinput[1], 2u);
}

Program loop_program(u32 loop_max) {
  Program p;
  p.blocks.resize(3);
  p.blocks[0].kind = BlockKind::kLoop;
  p.blocks[0].loop_max = loop_max;
  p.blocks[0].targets = {1, 2};
  p.blocks[1].kind = BlockKind::kFallthrough;
  p.blocks[1].targets = {0};
  p.blocks[2].kind = BlockKind::kExit;
  p.validate();
  return p;
}

TEST(InterpreterTest, LoopIterationsAreInputBounded) {
  Program p = loop_program(100);
  Trace t;
  const ExecResult res = run_traced(p, {3}, &t);
  EXPECT_EQ(res.outcome, ExecResult::Outcome::kOk);
  // head, (body, head) x3, exit.
  EXPECT_EQ(t.size(), 1 + 2 * 3 + 1u);
}

TEST(InterpreterTest, LoopIterationsAreCappedByLoopMax) {
  Program p = loop_program(5);
  Trace t;
  run_traced(p, {200}, &t);
  EXPECT_EQ(t.size(), 1 + 2 * 5 + 1u);
}

TEST(InterpreterTest, LoopCountersResetBetweenRuns) {
  Program p = loop_program(4);
  Interpreter interp(1u << 12);
  const std::vector<u8> input = {4};
  for (int round = 0; round < 3; ++round) {
    u64 steps = 0;
    interp.run(p, input, [&](u32) { ++steps; });
    EXPECT_EQ(steps, 1 + 2 * 4 + 1u) << "round " << round;
  }
}

TEST(InterpreterTest, StepBudgetExhaustionIsDeterministicHang) {
  Program p = loop_program(100);
  for (int round = 0; round < 3; ++round) {
    Trace t;
    const ExecResult res = run_traced(p, {99}, &t, /*budget=*/8);
    EXPECT_EQ(res.outcome, ExecResult::Outcome::kHang);
    EXPECT_TRUE(res.hung());
    EXPECT_EQ(res.steps, 8u);
    EXPECT_EQ(t.size(), 8u);
  }
}

TEST(InterpreterTest, CallAndReturnFollowTheStack) {
  Program p;
  p.blocks.resize(4);
  p.blocks[0].kind = BlockKind::kCall;
  p.blocks[0].targets = {2, 1};  // callee entry 2, continuation 1
  p.blocks[1].kind = BlockKind::kExit;
  p.blocks[2].kind = BlockKind::kFallthrough;
  p.blocks[2].targets = {3};
  p.blocks[3].kind = BlockKind::kReturn;
  p.validate();

  Trace t;
  const ExecResult res = run_traced(p, {}, &t);
  EXPECT_EQ(res.outcome, ExecResult::Outcome::kOk);
  EXPECT_EQ(t, (Trace{0, 2, 3, 1}));
}

TEST(InterpreterTest, BugBlockCrashesWithStableIdentity) {
  Program p;
  p.blocks.resize(3);
  p.blocks[0].kind = BlockKind::kBranch;
  p.blocks[0].pred = CmpPred::kEq;
  p.blocks[0].expected = 0xAA;
  p.blocks[0].targets = {2, 1};
  p.blocks[1].kind = BlockKind::kExit;
  p.blocks[2].kind = BlockKind::kBug;
  p.blocks[2].bug_id = 17;
  p.num_bugs = 1;
  p.validate();

  const ExecResult ok = run_traced(p, {0}, nullptr);
  EXPECT_EQ(ok.outcome, ExecResult::Outcome::kOk);

  const ExecResult a = run_traced(p, {0xAA}, nullptr);
  const ExecResult b = run_traced(p, {0xAA}, nullptr);
  EXPECT_EQ(a.outcome, ExecResult::Outcome::kCrash);
  EXPECT_TRUE(a.crashed());
  EXPECT_EQ(a.bug_id, 17u);
  EXPECT_EQ(a.faulting_block, 2u);
  EXPECT_EQ(a.stack_hash, b.stack_hash);
  EXPECT_EQ(a.faulting_block, b.faulting_block);
}

TEST(InterpreterTest, StackHashDistinguishesCallPaths) {
  // The same bug block reached through two different call sites must
  // produce different stack hashes (Crashwalk-style dedup identity).
  Program p;
  p.blocks.resize(6);
  p.blocks[0].kind = BlockKind::kBranch;
  p.blocks[0].pred = CmpPred::kEq;
  p.blocks[0].expected = 1;
  p.blocks[0].targets = {1, 2};
  p.blocks[1].kind = BlockKind::kCall;  // call site A
  p.blocks[1].targets = {5, 3};
  p.blocks[2].kind = BlockKind::kCall;  // call site B
  p.blocks[2].targets = {5, 4};
  p.blocks[3].kind = BlockKind::kExit;
  p.blocks[4].kind = BlockKind::kExit;
  p.blocks[5].kind = BlockKind::kBug;
  p.num_bugs = 1;
  p.validate();

  const ExecResult via_a = run_traced(p, {1}, nullptr);
  const ExecResult via_b = run_traced(p, {0}, nullptr);
  ASSERT_TRUE(via_a.crashed());
  ASSERT_TRUE(via_b.crashed());
  EXPECT_EQ(via_a.faulting_block, via_b.faulting_block);
  EXPECT_NE(via_a.stack_hash, via_b.stack_hash);
}

TEST(InterpreterTest, StepsCountExecutedBlocks) {
  Program p;
  p.blocks.resize(3);
  p.blocks[0].kind = BlockKind::kFallthrough;
  p.blocks[0].targets = {1};
  p.blocks[1].kind = BlockKind::kFallthrough;
  p.blocks[1].targets = {2};
  p.blocks[2].kind = BlockKind::kExit;
  p.validate();

  Trace t;
  const ExecResult res = run_traced(p, {}, &t);
  EXPECT_EQ(res.steps, 3u);
  EXPECT_EQ(t, (Trace{0, 1, 2}));
}

TEST(InterpreterTest, WorkPerBlockIsConfigurable) {
  Interpreter interp(1u << 10, /*work_per_block=*/0);
  EXPECT_EQ(interp.work_per_block(), 0u);
  interp.set_work_per_block(Interpreter::kDefaultWorkPerBlock);
  EXPECT_EQ(interp.work_per_block(), Interpreter::kDefaultWorkPerBlock);

  // The synthetic work must not change control flow.
  Program p = loop_program(3);
  Trace a, b;
  Interpreter light(1u << 10, 0);
  Interpreter heavy(1u << 10, 64);
  light.run(p, std::vector<u8>{3}, [&](u32 blk) { a.push_back(blk); });
  heavy.run(p, std::vector<u8>{3}, [&](u32 blk) { b.push_back(blk); });
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace bigmap
