// laf-intel compare splitting: stats, cascade semantics, partial-progress
// feedback, and outcome preservation (same kOk/kCrash/kHang + bug_id for
// the same input before and after the pass).
#include "target/lafintel.h"

#include <vector>

#include <gtest/gtest.h>

#include "target/generator.h"
#include "target/interpreter.h"
#include "target/program.h"

namespace bigmap {
namespace {

Program wide_eq_program(CmpPred pred = CmpPred::kEq) {
  Program p;
  p.blocks.resize(3);
  p.blocks[0].kind = BlockKind::kBranch;
  p.blocks[0].pred = pred;
  p.blocks[0].cmp_width = 4;
  p.blocks[0].expected = 0xDEADBEEF;
  p.blocks[0].targets = {1, 2};
  p.blocks[1].kind = BlockKind::kExit;
  p.blocks[2].kind = BlockKind::kExit;
  p.validate();
  return p;
}

u32 final_block(const Program& p, const std::vector<u8>& input) {
  Interpreter interp(1u << 12);
  u32 last = 0;
  interp.run(p, input, [&](u32 b) { last = b; });
  return last;
}

TEST(LafIntelTest, SplitsWideEqualityIntoByteCascade) {
  LafIntelStats stats;
  const Program out = apply_laf_intel(wide_eq_program(), &stats);
  EXPECT_NO_THROW(out.validate());
  EXPECT_EQ(stats.split_compares, 1u);
  EXPECT_EQ(stats.blocks_before, 3u);
  EXPECT_EQ(stats.blocks_after, 6u);  // 4-byte cascade + two exits
  EXPECT_GT(stats.static_edges_after, stats.static_edges_before);
}

TEST(LafIntelTest, CascadePreservesEqualitySemantics) {
  const Program src = wide_eq_program();
  const Program out = apply_laf_intel(src);
  const std::vector<u8> match = {0xEF, 0xBE, 0xAD, 0xDE};
  const std::vector<u8> wrong_tail = {0xEF, 0xBE, 0xAD, 0x00};
  const std::vector<u8> all_wrong = {1, 2, 3, 4};
  // The original's exit blocks 1/2 map to the transformed tail exits.
  EXPECT_EQ(final_block(src, match), 1u);
  EXPECT_EQ(final_block(src, wrong_tail), 2u);
  const u32 eq_exit = final_block(out, match);
  EXPECT_EQ(final_block(out, wrong_tail), final_block(out, all_wrong));
  EXPECT_NE(eq_exit, final_block(out, all_wrong));
}

TEST(LafIntelTest, CascadePreservesInequalitySemantics) {
  const Program src = wide_eq_program(CmpPred::kNe);
  const Program out = apply_laf_intel(src);
  const std::vector<u8> equal = {0xEF, 0xBE, 0xAD, 0xDE};
  const std::vector<u8> differs = {0xEF, 0xBE, 0xAD, 0x00};
  EXPECT_EQ(final_block(src, equal), 2u);
  EXPECT_EQ(final_block(src, differs), 1u);
  EXPECT_NE(final_block(out, equal), final_block(out, differs));
}

TEST(LafIntelTest, PartialMatchMakesProgress) {
  // The whole point of splitting: matching a prefix of the magic value
  // executes more blocks than matching none.
  const Program out = apply_laf_intel(wide_eq_program());
  Interpreter interp(1u << 12);
  u64 none_len = 0;
  u64 prefix_len = 0;
  interp.run(out, std::vector<u8>{0x00, 0x00, 0x00, 0x00},
             [&](u32) { ++none_len; });
  interp.run(out, std::vector<u8>{0xEF, 0xBE, 0x00, 0x00},
             [&](u32) { ++prefix_len; });
  EXPECT_GT(prefix_len, none_len);
}

TEST(LafIntelTest, LowersSwitchesToEqualityChains) {
  Program p;
  p.blocks.resize(4);
  p.blocks[0].kind = BlockKind::kSwitch;
  p.blocks[0].cmp_width = 2;
  p.blocks[0].cases = {0x1111, 0x2222};
  p.blocks[0].targets = {1, 2, 3};
  for (usize i = 1; i < 4; ++i) p.blocks[i].kind = BlockKind::kExit;
  p.validate();

  LafIntelStats stats;
  const Program out = apply_laf_intel(p, &stats);
  EXPECT_NO_THROW(out.validate());
  EXPECT_EQ(stats.split_switches, 1u);
  for (const Block& b : out.blocks) {
    EXPECT_NE(b.kind, BlockKind::kSwitch);
  }
  // Same case routing as the original for each case and the default.
  for (const std::vector<u8>& input :
       {std::vector<u8>{0x11, 0x11}, std::vector<u8>{0x22, 0x22},
        std::vector<u8>{0x33, 0x33}}) {
    const u32 src_exit = final_block(p, input);
    const u32 out_exit = final_block(out, input);
    // Exits are the last three blocks in both programs, in source order.
    EXPECT_EQ(src_exit - 1, out_exit - (out.blocks.size() - 3));
  }
}

TEST(LafIntelTest, ExpandsStrcmpGates) {
  Program p;
  p.blocks.resize(3);
  p.blocks[0].kind = BlockKind::kStrcmp;
  p.blocks[0].str = {'M', 'Z'};
  p.blocks[0].targets = {1, 2};
  p.blocks[1].kind = BlockKind::kExit;
  p.blocks[2].kind = BlockKind::kExit;
  p.validate();

  LafIntelStats stats;
  const Program out = apply_laf_intel(p, &stats);
  EXPECT_NO_THROW(out.validate());
  EXPECT_EQ(stats.split_strgates, 1u);
  for (const Block& b : out.blocks) {
    EXPECT_NE(b.kind, BlockKind::kStrcmp);
  }
  EXPECT_NE(final_block(out, {'M', 'Z'}), final_block(out, {'M', 'Q'}));
}

TEST(LafIntelTest, SecondApplicationFindsNothingToSplit) {
  GeneratorParams gp;
  gp.name = "laf-idem";
  gp.live_blocks = 200;
  gp.frac_wide_cmp = 0.5;
  gp.frac_hard_eq = 0.7;
  const GeneratedTarget t = generate_target(gp);
  LafIntelStats first, second;
  const Program once = apply_laf_intel(t.program, &first);
  const Program twice = apply_laf_intel(once, &second);
  EXPECT_GT(first.split_compares + first.split_switches + first.split_strgates,
            0u);
  EXPECT_EQ(second.split_compares, 0u);
  EXPECT_EQ(second.split_switches, 0u);
  EXPECT_EQ(second.split_strgates, 0u);
  EXPECT_EQ(twice.blocks.size(), once.blocks.size());
}

TEST(LafIntelTest, PreservesOutcomesOnGeneratedTargets) {
  GeneratorParams gp;
  gp.name = "laf-preserve";
  gp.seed = 9;
  gp.live_blocks = 400;
  gp.dead_blocks = 100;
  gp.num_bugs = 6;
  gp.bug_min_depth = 1;
  gp.bug_max_depth = 3;
  gp.frac_wide_cmp = 0.4;
  gp.frac_hard_eq = 0.5;
  const GeneratedTarget t = generate_target(gp);
  const Program transformed = apply_laf_intel(t.program);
  EXPECT_NO_THROW(transformed.validate());

  // Generous budget: the cascade adds steps, not behaviour.
  Interpreter interp(1u << 18);
  for (u32 bug = 0; bug < t.program.num_bugs; ++bug) {
    const std::vector<u8> input = t.crashing_input(bug);
    const ExecResult before = interp.run(t.program, input, [](u32) {});
    const ExecResult after = interp.run(transformed, input, [](u32) {});
    ASSERT_TRUE(before.crashed()) << "bug " << bug;
    EXPECT_TRUE(after.crashed()) << "bug " << bug;
    EXPECT_EQ(before.bug_id, after.bug_id);
  }
  for (const auto& seed : make_seed_corpus(t, 24, 5)) {
    const ExecResult before = interp.run(t.program, seed, [](u32) {});
    const ExecResult after = interp.run(transformed, seed, [](u32) {});
    EXPECT_EQ(static_cast<int>(before.outcome),
              static_cast<int>(after.outcome));
    if (before.crashed()) {
      EXPECT_EQ(before.bug_id, after.bug_id);
    }
  }
}

}  // namespace
}  // namespace bigmap
