// Program model and validate() hardening: malformed CFGs must be rejected
// with std::invalid_argument instead of reaching the interpreter.
#include "target/program.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace bigmap {
namespace {

Program small_valid_program() {
  Program p;
  p.blocks.resize(4);
  p.blocks[0].kind = BlockKind::kBranch;
  p.blocks[0].pred = CmpPred::kEq;
  p.blocks[0].expected = 7;
  p.blocks[0].targets = {1, 2};
  p.blocks[1].kind = BlockKind::kFallthrough;
  p.blocks[1].targets = {3};
  p.blocks[2].kind = BlockKind::kFallthrough;
  p.blocks[2].targets = {3};
  p.blocks[3].kind = BlockKind::kExit;
  return p;
}

TEST(ProgramTest, ValidProgramPassesValidation) {
  EXPECT_NO_THROW(small_valid_program().validate());
}

TEST(ProgramTest, EmptyProgramIsRejected) {
  Program p;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ProgramTest, OutOfRangeTargetIsRejected) {
  Program p = small_valid_program();
  p.blocks[1].targets = {42};
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ProgramTest, WrongTargetArityIsRejected) {
  Program p = small_valid_program();
  p.blocks[0].targets = {1};  // a branch needs exactly two successors
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ProgramTest, ExitWithTargetsIsRejected) {
  Program p = small_valid_program();
  p.blocks[3].targets = {0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ProgramTest, UnreachableBlockIsRejected) {
  Program p = small_valid_program();
  p.blocks.emplace_back();  // orphan exit block
  p.blocks.back().kind = BlockKind::kExit;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ProgramTest, InvalidCmpWidthIsRejected) {
  Program p = small_valid_program();
  p.blocks[0].cmp_width = 3;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ProgramTest, SwitchArityMismatchIsRejected) {
  Program p;
  p.blocks.resize(3);
  p.blocks[0].kind = BlockKind::kSwitch;
  p.blocks[0].cases = {1, 2};
  p.blocks[0].targets = {1, 2};  // needs cases.size() + 1 targets
  p.blocks[1].kind = BlockKind::kExit;
  p.blocks[2].kind = BlockKind::kExit;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ProgramTest, EmptyStrcmpStringIsRejected) {
  Program p = small_valid_program();
  p.blocks[1].kind = BlockKind::kStrcmp;
  p.blocks[1].targets = {3, 3};
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ProgramTest, ZeroLoopMaxIsRejected) {
  Program p = small_valid_program();
  p.blocks[1].kind = BlockKind::kLoop;
  p.blocks[1].loop_max = 0;
  p.blocks[1].targets = {3, 3};
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ProgramTest, ReturnWithoutCallIsRejected) {
  // Block 1 is a kReturn reachable straight from the entry: the simulated
  // call stack would underflow.
  Program p;
  p.blocks.resize(2);
  p.blocks[0].kind = BlockKind::kFallthrough;
  p.blocks[0].targets = {1};
  p.blocks[1].kind = BlockKind::kReturn;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ProgramTest, BalancedCallReturnIsAccepted) {
  Program p;
  p.blocks.resize(3);
  p.blocks[0].kind = BlockKind::kCall;
  p.blocks[0].targets = {2, 1};  // callee, continuation
  p.blocks[1].kind = BlockKind::kExit;
  p.blocks[2].kind = BlockKind::kReturn;
  EXPECT_NO_THROW(p.validate());
}

TEST(ProgramTest, ReturnReachableWithEmptyStackViaSecondPathIsRejected) {
  // The return is fine through the call edge but also reachable at depth 0
  // through the branch's false edge.
  Program p;
  p.blocks.resize(4);
  p.blocks[0].kind = BlockKind::kBranch;
  p.blocks[0].targets = {1, 3};
  p.blocks[1].kind = BlockKind::kCall;
  p.blocks[1].targets = {3, 2};
  p.blocks[2].kind = BlockKind::kExit;
  p.blocks[3].kind = BlockKind::kReturn;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ProgramTest, StaticEdgeCountDeduplicatesPairs) {
  Program p = small_valid_program();
  EXPECT_EQ(p.static_edge_count(), 4u);
  // A duplicate successor pair adds no new static edge.
  p.blocks[0].kind = BlockKind::kBranch;
  p.blocks[0].targets = {1, 1};
  EXPECT_EQ(p.static_edge_count(), 3u);
}

TEST(ProgramTest, StaticEdgeCountCountsSwitchFanout) {
  Program p;
  p.blocks.resize(4);
  p.blocks[0].kind = BlockKind::kSwitch;
  p.blocks[0].cases = {5, 9};
  p.blocks[0].targets = {1, 2, 3};
  p.blocks[1].kind = BlockKind::kExit;
  p.blocks[2].kind = BlockKind::kExit;
  p.blocks[3].kind = BlockKind::kExit;
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.static_edge_count(), 3u);
}

}  // namespace
}  // namespace bigmap
