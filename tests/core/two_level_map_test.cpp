// Tests for BigMap's two-level condensed coverage map — the paper's core
// data structure (§IV).
#include "core/two_level_map.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/classify.h"
#include "util/hash.h"
#include "util/rng.h"

namespace bigmap {
namespace {

MapOptions opts(usize size = 1u << 10, usize condensed = 0) {
  MapOptions o;
  o.map_size = size;
  o.condensed_size = condensed;
  o.huge_pages = false;
  return o;
}

TEST(TwoLevelMapTest, StartsUnassigned) {
  TwoLevelCoverageMap m(opts());
  EXPECT_EQ(m.used_key(), 0u);
  EXPECT_EQ(m.slot_of(0), TwoLevelCoverageMap::kUnassigned);
  EXPECT_EQ(m.slot_of(999), TwoLevelCoverageMap::kUnassigned);
  EXPECT_EQ(m.condensed_size(), m.map_size());
}

TEST(TwoLevelMapTest, FirstTouchAllocatesSequentialSlots) {
  // The paper's Figure 4(b): keys get condensed slots in first-touch order.
  TwoLevelCoverageMap m(opts());
  m.update(500);
  m.update(10);
  m.update(900);
  m.update(10);  // already assigned
  EXPECT_EQ(m.used_key(), 3u);
  EXPECT_EQ(m.slot_of(500), 0u);
  EXPECT_EQ(m.slot_of(10), 1u);
  EXPECT_EQ(m.slot_of(900), 2u);
  EXPECT_EQ(m.used_region()[0], 1);
  EXPECT_EQ(m.used_region()[1], 2);
  EXPECT_EQ(m.used_region()[2], 1);
}

TEST(TwoLevelMapTest, IndexSurvivesReset) {
  // §IV-B: the index bitmap is never reset; the same edge maps to the same
  // slot across all test cases.
  TwoLevelCoverageMap m(opts());
  m.update(123);
  m.update(456);
  const u32 slot123 = m.slot_of(123);
  m.reset();
  EXPECT_EQ(m.used_key(), 2u);  // allocation persists
  EXPECT_EQ(m.used_region()[slot123], 0);
  m.update(123);
  EXPECT_EQ(m.slot_of(123), slot123);
  EXPECT_EQ(m.used_region()[slot123], 1);
}

TEST(TwoLevelMapTest, ResetClearsOnlyUsedRegion) {
  TwoLevelCoverageMap m(opts());
  m.update(1);
  m.update(2);
  m.reset();
  for (u8 v : m.used_region()) EXPECT_EQ(v, 0);
  EXPECT_EQ(m.count_nonzero(), 0u);
}

TEST(TwoLevelMapTest, ScanCostTracksUsedKeyNotMapSize) {
  TwoLevelCoverageMap m(opts(1u << 20));
  EXPECT_EQ(m.scan_cost_bytes(), 0u);
  for (u32 k = 0; k < 100; ++k) m.update(k * 7919);
  EXPECT_LE(m.scan_cost_bytes(), 100u);
  EXPECT_GT(m.scan_cost_bytes(), 0u);
}

TEST(TwoLevelMapTest, KeyWrapsModuloMapSize) {
  TwoLevelCoverageMap m(opts(64));
  m.update(64);  // aliases key 0
  m.update(0);
  EXPECT_EQ(m.used_key(), 1u);
  EXPECT_EQ(m.used_region()[0], 2);
}

TEST(TwoLevelMapTest, ClassifyOnlyUsedRegion) {
  TwoLevelCoverageMap m(opts());
  for (int i = 0; i < 5; ++i) m.update(42);  // slot 0, raw 5
  for (int i = 0; i < 1; ++i) m.update(43);  // slot 1, raw 1
  m.classify();
  EXPECT_EQ(m.used_region()[0], 8);
  EXPECT_EQ(m.used_region()[1], 1);
}

TEST(TwoLevelMapTest, ClassifyHandlesNonWordMultipleUsedKey) {
  TwoLevelCoverageMap m(opts());
  for (u32 k = 0; k < 11; ++k) {  // used_key = 11, not a multiple of 8
    for (u32 r = 0; r < 5; ++r) m.update(1000 + k);
  }
  m.classify();
  for (u32 s = 0; s < 11; ++s) EXPECT_EQ(m.used_region()[s], 8) << s;
}

TEST(TwoLevelMapTest, CompareAgainstCondensedVirgin) {
  TwoLevelCoverageMap m(opts());
  VirginMap virgin(m.condensed_size());
  m.update(7);
  m.classify();
  EXPECT_EQ(m.compare_update(virgin), NewBits::kNewTuple);

  m.reset();
  m.update(7);
  m.classify();
  EXPECT_EQ(m.compare_update(virgin), NewBits::kNone);

  // New edge discovered later extends used_key; prefix compare sees it.
  m.reset();
  m.update(7);
  m.update(8);
  m.classify();
  EXPECT_EQ(m.compare_update(virgin), NewBits::kNewTuple);
}

TEST(TwoLevelMapTest, HashUpToLastNonZero) {
  // The paper's §IV-D example: P1 = {1,1} and P3 = {1,1,0} (after a third
  // edge was discovered by P2) must hash identically.
  TwoLevelCoverageMap m(opts());

  // P1: edges A->B (key 100), B->C (key 200).
  m.update(100);
  m.update(200);
  const u32 h1 = m.hash();

  // P2: discovers edge C->D (key 300) — used_key grows to 3.
  m.reset();
  m.update(100);
  m.update(200);
  m.update(300);
  const u32 h2 = m.hash();
  EXPECT_NE(h1, h2);

  // P3: same path as P1, but now used_key == 3; trailing zero must be
  // excluded from the hash.
  m.reset();
  m.update(100);
  m.update(200);
  EXPECT_EQ(m.hash(), h1);
}

TEST(TwoLevelMapTest, HashOfEmptyUsedRegion) {
  TwoLevelCoverageMap m(opts());
  EXPECT_EQ(m.hash(), crc32({}));
  m.update(5);
  m.reset();  // slot exists but zero -> still hashes as empty
  EXPECT_EQ(m.hash(), crc32({}));
}

TEST(TwoLevelMapTest, MergedClassifyCompareMatchesSequential) {
  for (bool merged : {false, true}) {
    MapOptions o = opts(512);
    o.merged_classify_compare = merged;
    TwoLevelCoverageMap m(o);
    VirginMap virgin(m.condensed_size());

    for (int i = 0; i < 3; ++i) m.update(50);
    m.update(60);
    EXPECT_EQ(m.classify_and_compare(virgin), NewBits::kNewTuple) << merged;
    EXPECT_EQ(m.used_region()[m.slot_of(50)], 4) << merged;  // 3 -> bucket 4

    m.reset();
    for (int i = 0; i < 3; ++i) m.update(50);
    m.update(60);
    EXPECT_EQ(m.classify_and_compare(virgin), NewBits::kNone) << merged;
  }
}

TEST(TwoLevelMapTest, SaturationAliasesFinalSlot) {
  MapOptions o = opts(1u << 10, /*condensed=*/8);
  TwoLevelCoverageMap m(o);
  for (u32 k = 0; k < 12; ++k) m.update(k * 13 + 1);
  EXPECT_EQ(m.used_key(), 8u);
  EXPECT_EQ(m.saturated_updates(), 4u);
  // Aliased updates landed on the last slot.
  EXPECT_GE(m.used_region()[7], 5);  // own hit + 4 aliases
}

TEST(TwoLevelMapTest, UsedKeyNeverExceedsDistinctKeys) {
  TwoLevelCoverageMap m(opts(1u << 12));
  Xoshiro256 rng(8);
  std::vector<u32> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(rng.below(1u << 12));
  for (int round = 0; round < 3; ++round) {
    m.reset();
    for (u32 k : keys) m.update(k);
  }
  std::sort(keys.begin(), keys.end());
  const usize distinct =
      std::unique(keys.begin(), keys.end()) - keys.begin();
  EXPECT_EQ(m.used_key(), distinct);
}

}  // namespace
}  // namespace bigmap
