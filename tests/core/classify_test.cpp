// Tests for AFL hit-count bucketing.
#include "core/classify.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace bigmap {
namespace {

TEST(ClassifyCountTest, ExactBucketBoundaries) {
  // The AFL bucket table (§II-A2): [1] [2] [3] [4-7] [8-15] [16-31]
  // [32-127] [128-255].
  EXPECT_EQ(classify_count(0), 0);
  EXPECT_EQ(classify_count(1), 1);
  EXPECT_EQ(classify_count(2), 2);
  EXPECT_EQ(classify_count(3), 4);
  EXPECT_EQ(classify_count(4), 8);
  EXPECT_EQ(classify_count(7), 8);
  EXPECT_EQ(classify_count(8), 16);
  EXPECT_EQ(classify_count(15), 16);
  EXPECT_EQ(classify_count(16), 32);
  EXPECT_EQ(classify_count(31), 32);
  EXPECT_EQ(classify_count(32), 64);
  EXPECT_EQ(classify_count(127), 64);
  EXPECT_EQ(classify_count(128), 128);
  EXPECT_EQ(classify_count(255), 128);
}

TEST(ClassifyCountTest, MonotoneNonDecreasing) {
  for (u32 v = 1; v < 256; ++v) {
    EXPECT_GE(classify_count(static_cast<u8>(v)),
              classify_count(static_cast<u8>(v - 1)));
  }
}

TEST(ClassifyCountTest, NotIdempotentForMidBuckets) {
  // AFL's bucketing is deliberately NOT idempotent: bucket values 4..32
  // re-classify into the next bucket (e.g. classify(8) == 16). This is why
  // the executor classifies each trace exactly once per run; the test
  // documents the hazard.
  EXPECT_EQ(classify_count(classify_count(8)), 32);   // 8 -> 16 -> 32
  EXPECT_EQ(classify_count(classify_count(3)), 8);    // 3 -> 4 -> 8
  // Fixed points: 0, 1, 2, 64 -> 64, 128 -> 128.
  for (u8 v : {0, 1, 2, 64, 128}) {
    EXPECT_EQ(classify_count(v), v);
  }
}

TEST(ClassifyLookup8Test, MatchesScalarFunction) {
  const auto& lut = count_class_lookup8();
  for (u32 v = 0; v < 256; ++v) {
    EXPECT_EQ(lut[v], classify_count(static_cast<u8>(v)));
  }
}

TEST(ClassifyLookup16Test, MatchesBytePairs) {
  const auto& lut16 = count_class_lookup16();
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const u16 v = static_cast<u16>(rng.next());
    const u8 lo = static_cast<u8>(v);
    const u8 hi = static_cast<u8>(v >> 8);
    const u16 expect =
        static_cast<u16>((static_cast<u16>(classify_count(hi)) << 8) |
                         classify_count(lo));
    EXPECT_EQ(lut16[v], expect);
  }
}

TEST(ClassifyCountsTest, WordwiseMatchesBytewise) {
  Xoshiro256 rng(77);
  std::vector<u8> a(4096), b(4096);
  for (usize i = 0; i < a.size(); ++i) {
    a[i] = b[i] = static_cast<u8>(rng.next());
  }
  classify_counts(a.data(), a.size());
  classify_counts_bytewise(b.data(), b.size());
  EXPECT_EQ(a, b);
}

TEST(ClassifyCountsTest, ZeroBufferUntouched) {
  std::vector<u8> buf(1024, 0);
  classify_counts(buf.data(), buf.size());
  for (u8 v : buf) EXPECT_EQ(v, 0);
}

TEST(ClassifyCountsTest, ResultIsClassified) {
  Xoshiro256 rng(99);
  std::vector<u8> buf(2048);
  for (auto& v : buf) v = static_cast<u8>(rng.next());
  classify_counts(buf.data(), buf.size());
  EXPECT_TRUE(is_classified(buf));
}

TEST(IsClassifiedTest, DetectsRawCounts) {
  std::vector<u8> ok{0, 1, 2, 4, 8, 16, 32, 64, 128};
  EXPECT_TRUE(is_classified(ok));
  std::vector<u8> bad{0, 1, 3};
  EXPECT_FALSE(is_classified(bad));
  std::vector<u8> bad2{5};
  EXPECT_FALSE(is_classified(bad2));
}

TEST(ClassifyCountsBytewiseTest, HandlesOddLengths) {
  std::vector<u8> buf{3, 9, 200, 1, 0};
  classify_counts_bytewise(buf.data(), buf.size());
  EXPECT_EQ(buf, (std::vector<u8>{4, 16, 128, 1, 0}));
}

// Property sweep: every length and alignment combination of the word-wise
// classifier must agree with the scalar reference.
class ClassifyLengthTest : public ::testing::TestWithParam<usize> {};

TEST_P(ClassifyLengthTest, AgreesWithScalar) {
  const usize len = GetParam();
  Xoshiro256 rng(1000 + len);
  std::vector<u8> a(len), b(len);
  for (usize i = 0; i < len; ++i) a[i] = b[i] = static_cast<u8>(rng.next());
  classify_counts(a.data(), a.size());
  for (auto& v : b) v = classify_count(v);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Lengths, ClassifyLengthTest,
                         ::testing::Values(0, 8, 16, 64, 256, 4096, 65536));

}  // namespace
}  // namespace bigmap
