// Tests for the AFL-style flat coverage map.
#include "core/flat_map.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/classify.h"
#include "util/hash.h"

namespace bigmap {
namespace {

MapOptions small_opts(usize size = 1u << 10) {
  MapOptions o;
  o.map_size = size;
  o.huge_pages = false;
  return o;
}

TEST(FlatMapTest, RejectsBadSizes) {
  MapOptions o;
  o.map_size = 1000;  // not a power of two
  EXPECT_THROW(FlatCoverageMap m(o), std::invalid_argument);
  o.map_size = 4;  // < 8
  EXPECT_THROW(FlatCoverageMap m(o), std::invalid_argument);
}

TEST(FlatMapTest, StartsZeroed) {
  FlatCoverageMap m(small_opts());
  EXPECT_EQ(m.count_nonzero(), 0u);
  EXPECT_EQ(m.map_size(), 1u << 10);
}

TEST(FlatMapTest, UpdateIncrementsHitCount) {
  FlatCoverageMap m(small_opts());
  m.update(5);
  m.update(5);
  m.update(7);
  EXPECT_EQ(m.trace()[5], 2);
  EXPECT_EQ(m.trace()[7], 1);
  EXPECT_EQ(m.count_nonzero(), 2u);
}

TEST(FlatMapTest, UpdateWrapsKeyModuloMapSize) {
  FlatCoverageMap m(small_opts(64));
  m.update(64);   // == position 0
  m.update(65);   // == position 1
  m.update(129);  // == position 1
  EXPECT_EQ(m.trace()[0], 1);
  EXPECT_EQ(m.trace()[1], 2);
}

TEST(FlatMapTest, HitCountSaturationWraps) {
  // AFL trace bytes are u8 and wrap at 256; 256 hits alias to zero — a
  // known AFL artifact we reproduce faithfully.
  FlatCoverageMap m(small_opts(64));
  for (int i = 0; i < 256; ++i) m.update(3);
  EXPECT_EQ(m.trace()[3], 0);
}

TEST(FlatMapTest, ResetClearsFullMap) {
  FlatCoverageMap m(small_opts());
  for (u32 k = 0; k < 100; ++k) m.update(k * 7);
  m.reset();
  EXPECT_EQ(m.count_nonzero(), 0u);
}

TEST(FlatMapTest, ResetNontemporalAndPlainAgree) {
  MapOptions nt = small_opts();
  nt.nontemporal_reset = true;
  MapOptions plain = small_opts();
  plain.nontemporal_reset = false;

  FlatCoverageMap a(nt), b(plain);
  for (u32 k = 0; k < 64; ++k) {
    a.update(k * 3);
    b.update(k * 3);
  }
  a.reset();
  b.reset();
  EXPECT_EQ(a.count_nonzero(), 0u);
  EXPECT_EQ(b.count_nonzero(), 0u);
}

TEST(FlatMapTest, ClassifyBucketsInPlace) {
  FlatCoverageMap m(small_opts(64));
  for (int i = 0; i < 5; ++i) m.update(10);  // raw 5 -> bucket 8
  m.classify();
  EXPECT_EQ(m.trace()[10], 8);
  EXPECT_TRUE(is_classified(m.trace()));
}

TEST(FlatMapTest, CompareFindsNewTupleThenNothing) {
  FlatCoverageMap m(small_opts(64));
  VirginMap virgin(64);
  m.update(9);
  m.classify();
  EXPECT_EQ(m.compare_update(virgin), NewBits::kNewTuple);

  m.reset();
  m.update(9);
  m.classify();
  EXPECT_EQ(m.compare_update(virgin), NewBits::kNone);
}

TEST(FlatMapTest, MergedAndSequentialClassifyCompareAgree) {
  for (bool merged : {false, true}) {
    MapOptions o = small_opts(256);
    o.merged_classify_compare = merged;
    FlatCoverageMap m(o);
    VirginMap virgin(256);

    m.update(1);
    m.update(1);
    m.update(100);
    EXPECT_EQ(m.classify_and_compare(virgin), NewBits::kNewTuple) << merged;
    EXPECT_EQ(m.trace()[1], 2) << merged;
    EXPECT_EQ(m.trace()[100], 1) << merged;

    m.reset();
    m.update(1);
    m.update(1);
    m.update(100);
    EXPECT_EQ(m.classify_and_compare(virgin), NewBits::kNone) << merged;
  }
}

TEST(FlatMapTest, HashCoversFullMap) {
  FlatCoverageMap a(small_opts(64)), b(small_opts(64));
  EXPECT_EQ(a.hash(), b.hash());  // both all-zero
  a.update(3);
  EXPECT_NE(a.hash(), b.hash());
  b.update(3);
  EXPECT_EQ(a.hash(), b.hash());
  // Same count at a different position must hash differently.
  FlatCoverageMap c(small_opts(64));
  c.update(4);
  EXPECT_NE(a.hash(), c.hash());
}

TEST(FlatMapTest, ScanCostIsMapSize) {
  FlatCoverageMap m(small_opts(1u << 16));
  EXPECT_EQ(m.scan_cost_bytes(), 1u << 16);
  m.update(1);  // scan cost is size-independent of usage
  EXPECT_EQ(m.scan_cost_bytes(), 1u << 16);
}

TEST(FlatMapTest, HugePageOptionStillWorks) {
  MapOptions o;
  o.map_size = 4u << 20;
  o.huge_pages = true;
  FlatCoverageMap m(o);
  m.update(12345);
  EXPECT_EQ(m.trace()[12345], 1);
}

}  // namespace
}  // namespace bigmap
