// Dedicated tests for the runtime-dispatch CoverageMapVariant wrapper.
#include "core/coverage_map.h"

#include <gtest/gtest.h>

#include "util/hash.h"

namespace bigmap {
namespace {

MapOptions opts(usize size = 1u << 12) {
  MapOptions o;
  o.map_size = size;
  o.huge_pages = false;
  return o;
}

class VariantTest : public ::testing::TestWithParam<MapScheme> {};

TEST_P(VariantTest, BasicLifecycle) {
  CoverageMapVariant m(GetParam(), opts());
  EXPECT_EQ(m.scheme(), GetParam());
  EXPECT_EQ(m.map_size(), 1u << 12);
  EXPECT_EQ(m.count_nonzero(), 0u);

  m.update(100);
  m.update(100);
  m.update(200);
  EXPECT_EQ(m.count_nonzero(), 2u);

  m.reset();
  EXPECT_EQ(m.count_nonzero(), 0u);
}

TEST_P(VariantTest, ClassifyAndHashDispatch) {
  CoverageMapVariant m(GetParam(), opts());
  for (int i = 0; i < 5; ++i) m.update(50);
  const u32 raw_hash = m.hash();
  m.classify();
  EXPECT_NE(m.hash(), raw_hash);  // 5 -> bucket 8 changes the bytes
  EXPECT_EQ(m.count_nonzero(), 1u);
}

TEST_P(VariantTest, VirginCompareFlow) {
  CoverageMapVariant m(GetParam(), opts());
  VirginMap virgin(m.virgin_size());

  m.update(7);
  EXPECT_EQ(m.classify_and_compare(virgin), NewBits::kNewTuple);
  m.reset();
  m.update(7);
  EXPECT_EQ(m.classify_and_compare(virgin), NewBits::kNone);
  m.reset();
  for (int i = 0; i < 3; ++i) m.update(7);  // new bucket
  EXPECT_EQ(m.classify_and_compare(virgin), NewBits::kNewCounts);
}

TEST_P(VariantTest, SeparateCompareUpdate) {
  CoverageMapVariant m(GetParam(), opts());
  VirginMap virgin(m.virgin_size());
  m.update(9);
  m.classify();
  EXPECT_EQ(m.compare_update(virgin), NewBits::kNewTuple);
}

INSTANTIATE_TEST_SUITE_P(Schemes, VariantTest,
                         ::testing::Values(MapScheme::kFlat,
                                           MapScheme::kTwoLevel));

TEST(VariantTest, SchemeSpecificAccessors) {
  CoverageMapVariant flat(MapScheme::kFlat, opts());
  CoverageMapVariant two(MapScheme::kTwoLevel, opts());

  ASSERT_NE(flat.as_flat(), nullptr);
  EXPECT_EQ(flat.as_two_level(), nullptr);
  ASSERT_NE(two.as_two_level(), nullptr);
  EXPECT_EQ(two.as_flat(), nullptr);

  // virgin_size: full map for flat, condensed size for two-level.
  EXPECT_EQ(flat.virgin_size(), flat.map_size());
  EXPECT_EQ(two.virgin_size(), two.as_two_level()->condensed_size());
}

TEST(VariantTest, ScanCostReflectsScheme) {
  CoverageMapVariant flat(MapScheme::kFlat, opts(1u << 16));
  CoverageMapVariant two(MapScheme::kTwoLevel, opts(1u << 16));
  for (u32 k : {1u, 2u, 3u}) {
    flat.update(k);
    two.update(k);
  }
  EXPECT_EQ(flat.scan_cost_bytes(), 1u << 16);
  EXPECT_EQ(two.scan_cost_bytes(), 3u);
}

TEST(VariantTest, CondensedSizeOption) {
  MapOptions o = opts(1u << 12);
  o.condensed_size = 256;
  CoverageMapVariant two(MapScheme::kTwoLevel, o);
  EXPECT_EQ(two.virgin_size(), 256u);
  EXPECT_EQ(two.map_size(), 1u << 12);
}

TEST(VariantTest, MapScemeNames) {
  EXPECT_STREQ(map_scheme_name(MapScheme::kFlat), "AFL");
  EXPECT_STREQ(map_scheme_name(MapScheme::kTwoLevel), "BigMap");
}

}  // namespace
}  // namespace bigmap
