// Differential kernel-equivalence suite.
//
// Every kernel variant (swar / sse2 / avx2 / whatever the registry exposes
// on this CPU) must be provably byte-identical to the scalar reference on
// every whole-map operation — that is the contract that makes kernel
// selection a pure performance decision. The suite runs seeded random
// traces through every runtime kernel and the scalar oracle side by side:
//
//   - trace patterns: dense, sparse, all-zero, all-0xFF, saturating
//     (255-heavy plus every bucket boundary), bucket-boundary cycling;
//   - lengths crossing every word/vector boundary (len % 8 != 0 and
//     len % 32 != 0 tails included);
//   - ops: reset, classify, compare_update, fused classify_compare, hash,
//     count_ne, find_used_end — asserting byte-exact coverage/virgin
//     buffers and identical NewBits verdicts;
//   - cross-scheme property runs (FlatCoverageMap vs. TwoLevelCoverageMap
//     under every kernel) and the §IV-D golden-hash stability rule.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/classify.h"
#include "core/coverage_map.h"
#include "core/kernels/kernels.h"
#include "util/rng.h"

namespace bigmap {
namespace {

using kernels::KernelOps;

std::vector<const KernelOps*> vector_kernels() {
  std::vector<const KernelOps*> v;
  for (const KernelOps* k : kernels::runtime_kernels()) {
    if (std::string_view(k->name) != "scalar") v.push_back(k);
  }
  return v;
}

// Lengths chosen to cross every u64 word and 16/32-byte vector boundary,
// plus empty and sub-word sizes.
const std::vector<usize> kLengths = {
    0,  1,  2,   3,   5,   7,   8,   9,   13,  15,   16,   17,   24,
    31, 32, 33,  40,  63,  64,  65,  100, 127, 128,  129,  255,  256,
    257, 1000, 4096, 4099, 8192, 8201, 65536, 65543};

enum class Pattern {
  kAllZero,
  kAllFF,
  kDense,       // every byte a random raw count
  kSparse,      // ~2% non-zero: the steady-state coverage shape
  kSaturating,  // 255-heavy with every bucket boundary mixed in
  kBoundaries,  // cycles through the documented bucket edges
};

const std::vector<Pattern> kPatterns = {
    Pattern::kAllZero, Pattern::kAllFF,      Pattern::kDense,
    Pattern::kSparse,  Pattern::kSaturating, Pattern::kBoundaries};

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kAllZero: return "all-zero";
    case Pattern::kAllFF: return "all-ff";
    case Pattern::kDense: return "dense";
    case Pattern::kSparse: return "sparse";
    case Pattern::kSaturating: return "saturating";
    case Pattern::kBoundaries: return "boundaries";
  }
  return "?";
}

std::vector<u8> make_trace(Pattern p, usize len, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<u8> t(len, 0);
  switch (p) {
    case Pattern::kAllZero:
      break;
    case Pattern::kAllFF:
      std::fill(t.begin(), t.end(), 0xFF);
      break;
    case Pattern::kDense:
      for (auto& b : t) b = static_cast<u8>(rng.next());
      break;
    case Pattern::kSparse:
      for (usize i = 0; i < len / 50 + 1 && len > 0; ++i) {
        t[rng.below(static_cast<u32>(len))] =
            static_cast<u8>(1 + (rng.next() % 255));
      }
      break;
    case Pattern::kSaturating: {
      static const u8 edges[] = {255, 255, 255, 128, 127, 32, 31, 16, 15,
                                 8,   7,   4,   3,   2,   1,  0};
      for (usize i = 0; i < len; ++i) {
        t[i] = (rng.next() % 4 != 0)
                   ? u8{255}
                   : edges[rng.next() % (sizeof(edges))];
      }
      break;
    }
    case Pattern::kBoundaries: {
      static const u8 edges[] = {0,  1,  2,  3,  4,   7,   8,   15, 16,
                                 31, 32, 63, 64, 127, 128, 129, 254, 255};
      for (usize i = 0; i < len; ++i) t[i] = edges[i % sizeof(edges)];
      break;
    }
  }
  return t;
}

// A partially-consumed virgin map: some bytes still 0xFF, some already
// cleared by earlier (scalar-classified) traffic — the realistic shape.
std::vector<u8> make_virgin(usize len, u64 seed) {
  std::vector<u8> v(len, 0xFF);
  std::vector<u8> prior = make_trace(Pattern::kSparse, len, seed ^ 0xABCD);
  kernels::scalar_kernel().classify(prior.data(), len);
  kernels::scalar_kernel().compare_update(prior.data(), v.data(), len);
  return v;
}

// --- registry sanity ------------------------------------------------------

TEST(KernelRegistryTest, ScalarAndSwarAlwaysPresent) {
  auto compiled = kernels::compiled_kernels();
  auto runtime = kernels::runtime_kernels();
  ASSERT_GE(compiled.size(), 2u);
  ASSERT_GE(runtime.size(), 2u);
  EXPECT_STREQ(runtime.front()->name, "scalar");
  EXPECT_NE(kernels::find_kernel("scalar"), nullptr);
  EXPECT_NE(kernels::find_kernel("swar"), nullptr);
  // Names are unique.
  std::vector<std::string> names;
  for (const KernelOps* k : runtime) names.emplace_back(k->name);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(KernelRegistryTest, ActiveKernelIsRuntimeUsable) {
  const KernelOps& active = kernels::active_kernel();
  EXPECT_NE(kernels::find_kernel(active.name), nullptr);
}

TEST(KernelRegistryTest, ResolveEmptyGivesActive) {
  EXPECT_EQ(&kernels::resolve_kernel(""), &kernels::active_kernel());
  EXPECT_STREQ(kernels::resolve_kernel("scalar").name, "scalar");
}

TEST(KernelRegistryTest, ResolveUnknownThrows) {
  EXPECT_THROW(kernels::resolve_kernel("avx512-nope"),
               std::invalid_argument);
  MapOptions o;
  o.map_size = 1u << 10;
  o.huge_pages = false;
  o.kernel = "not-a-kernel";
  EXPECT_THROW(FlatCoverageMap{o}, std::invalid_argument);
  EXPECT_THROW(TwoLevelCoverageMap{o}, std::invalid_argument);
}

TEST(KernelRegistryTest, MapsReportTheirKernel) {
  MapOptions o;
  o.map_size = 1u << 10;
  o.huge_pages = false;
  o.kernel = "swar";
  FlatCoverageMap flat(o);
  TwoLevelCoverageMap two(o);
  EXPECT_STREQ(flat.kernel_name(), "swar");
  EXPECT_STREQ(two.kernel_name(), "swar");

  CoverageMapVariant var(MapScheme::kTwoLevel, o);
  EXPECT_STREQ(var.kernel_name(), "swar");

  MapOptions def;
  def.map_size = 1u << 10;
  def.huge_pages = false;
  FlatCoverageMap flat_def(def);
  EXPECT_STREQ(flat_def.kernel_name(), kernels::active_kernel().name);
}

// --- per-op differential equivalence --------------------------------------

TEST(KernelDiffTest, ClassifyMatchesScalar) {
  for (const KernelOps* k : vector_kernels()) {
    for (Pattern p : kPatterns) {
      for (usize len : kLengths) {
        std::vector<u8> expect = make_trace(p, len, 7 * len + 1);
        std::vector<u8> got = expect;
        kernels::scalar_kernel().classify(expect.data(), len);
        k->classify(got.data(), len);
        ASSERT_EQ(got, expect) << k->name << " classify, pattern "
                               << pattern_name(p) << ", len " << len;
      }
    }
  }
}

TEST(KernelDiffTest, ExhaustiveClassifyAllByteValues) {
  // All 256 raw hit counts must land in the documented AFL bucket under
  // every kernel, including in the (len % 8 != 0, len % 32 != 0) tail.
  const usize kLen = 67;  // 2 full AVX2 vectors + 3-byte tail
  for (const KernelOps* k : kernels::runtime_kernels()) {
    for (u32 raw = 0; raw < 256; ++raw) {
      std::vector<u8> buf(kLen, static_cast<u8>(raw));
      k->classify(buf.data(), buf.size());
      for (usize i = 0; i < buf.size(); ++i) {
        ASSERT_EQ(buf[i], classify_count(static_cast<u8>(raw)))
            << k->name << " raw=" << raw << " index=" << i;
      }
    }
  }
}

TEST(KernelDiffTest, CompareUpdateMatchesScalar) {
  for (const KernelOps* k : vector_kernels()) {
    for (Pattern p : kPatterns) {
      for (usize len : kLengths) {
        std::vector<u8> trace = make_trace(p, len, 31 * len + 5);
        kernels::scalar_kernel().classify(trace.data(), len);

        std::vector<u8> virgin_ref = make_virgin(len, len);
        std::vector<u8> virgin_got = virgin_ref;
        const NewBits expect = kernels::scalar_kernel().compare_update(
            trace.data(), virgin_ref.data(), len);
        const NewBits got =
            k->compare_update(trace.data(), virgin_got.data(), len);
        ASSERT_EQ(got, expect) << k->name << " verdict, pattern "
                               << pattern_name(p) << ", len " << len;
        ASSERT_EQ(virgin_got, virgin_ref)
            << k->name << " virgin bytes, pattern " << pattern_name(p)
            << ", len " << len;
      }
    }
  }
}

TEST(KernelDiffTest, FusedClassifyCompareMatchesScalar) {
  for (const KernelOps* k : vector_kernels()) {
    for (Pattern p : kPatterns) {
      for (usize len : kLengths) {
        std::vector<u8> trace_ref = make_trace(p, len, 13 * len + 3);
        std::vector<u8> trace_got = trace_ref;
        std::vector<u8> virgin_ref = make_virgin(len, len + 9);
        std::vector<u8> virgin_got = virgin_ref;

        const NewBits expect = kernels::scalar_kernel().classify_compare(
            trace_ref.data(), virgin_ref.data(), len);
        const NewBits got =
            k->classify_compare(trace_got.data(), virgin_got.data(), len);
        ASSERT_EQ(got, expect) << k->name << " verdict, pattern "
                               << pattern_name(p) << ", len " << len;
        ASSERT_EQ(trace_got, trace_ref)
            << k->name << " classified trace, pattern " << pattern_name(p)
            << ", len " << len;
        ASSERT_EQ(virgin_got, virgin_ref)
            << k->name << " virgin bytes, pattern " << pattern_name(p)
            << ", len " << len;
      }
    }
  }
}

TEST(KernelDiffTest, FusedEqualsSequentialWithinEachKernel) {
  for (const KernelOps* k : kernels::runtime_kernels()) {
    for (usize len : {usize{129}, usize{4099}}) {
      std::vector<u8> trace_a = make_trace(Pattern::kDense, len, 99);
      std::vector<u8> trace_b = trace_a;
      std::vector<u8> virgin_a = make_virgin(len, 17);
      std::vector<u8> virgin_b = virgin_a;

      const NewBits fused =
          k->classify_compare(trace_a.data(), virgin_a.data(), len);
      k->classify(trace_b.data(), len);
      const NewBits sequential =
          k->compare_update(trace_b.data(), virgin_b.data(), len);

      EXPECT_EQ(fused, sequential) << k->name << " len " << len;
      EXPECT_EQ(trace_a, trace_b) << k->name << " len " << len;
      EXPECT_EQ(virgin_a, virgin_b) << k->name << " len " << len;
    }
  }
}

TEST(KernelDiffTest, ResetHashCountUsedEndMatchScalar) {
  for (const KernelOps* k : vector_kernels()) {
    for (Pattern p : kPatterns) {
      for (usize len : kLengths) {
        std::vector<u8> buf = make_trace(p, len, 3 * len + 11);

        ASSERT_EQ(k->hash(buf.data(), len),
                  kernels::scalar_kernel().hash(buf.data(), len))
            << k->name << " hash, " << pattern_name(p) << ", len " << len;
        ASSERT_EQ(k->count_ne(buf.data(), len, 0),
                  kernels::scalar_kernel().count_ne(buf.data(), len, 0))
            << k->name << " count_ne(0), " << pattern_name(p) << ", len "
            << len;
        ASSERT_EQ(k->count_ne(buf.data(), len, 0xFF),
                  kernels::scalar_kernel().count_ne(buf.data(), len, 0xFF))
            << k->name << " count_ne(0xFF), " << pattern_name(p) << ", len "
            << len;
        ASSERT_EQ(k->find_used_end(buf.data(), len),
                  kernels::scalar_kernel().find_used_end(buf.data(), len))
            << k->name << " find_used_end, " << pattern_name(p) << ", len "
            << len;

        k->reset(buf.data(), len);
        ASSERT_EQ(std::count(buf.begin(), buf.end(), 0),
                  static_cast<long>(len))
            << k->name << " reset, len " << len;
      }
    }
  }
}

TEST(KernelDiffTest, UsedEndSingleByteSweep) {
  // One non-zero byte at every position of a buffer crossing the widest
  // vector boundary: the backward scan must find exactly that byte.
  const usize kLen = 97;
  for (const KernelOps* k : kernels::runtime_kernels()) {
    for (usize pos = 0; pos < kLen; ++pos) {
      std::vector<u8> buf(kLen, 0);
      buf[pos] = 1;
      ASSERT_EQ(k->find_used_end(buf.data(), kLen), pos + 1)
          << k->name << " pos " << pos;
    }
    std::vector<u8> zeros(kLen, 0);
    EXPECT_EQ(k->find_used_end(zeros.data(), kLen), 0u) << k->name;
  }
}

// Multi-step evolution: each kernel maintains its own virgin map against
// the same trace sequence; the NewBits verdict sequence must match the
// scalar oracle step for step (this is what decides which inputs a fuzzer
// keeps, so a single divergence would change campaign behaviour).
TEST(KernelDiffTest, VerdictSequenceOverEvolvingVirgin) {
  const usize kLen = 4099;
  const u32 kSteps = 60;

  for (const KernelOps* k : vector_kernels()) {
    std::vector<u8> virgin_ref(kLen, 0xFF);
    std::vector<u8> virgin_got(kLen, 0xFF);
    Xoshiro256 rng(2024);
    for (u32 step = 0; step < kSteps; ++step) {
      const Pattern p = kPatterns[rng.next() % kPatterns.size()];
      std::vector<u8> trace_ref = make_trace(p, kLen, rng.next());
      std::vector<u8> trace_got = trace_ref;

      const NewBits expect = kernels::scalar_kernel().classify_compare(
          trace_ref.data(), virgin_ref.data(), kLen);
      const NewBits got =
          k->classify_compare(trace_got.data(), virgin_got.data(), kLen);
      ASSERT_EQ(got, expect) << k->name << " step " << step;
      ASSERT_EQ(virgin_got, virgin_ref) << k->name << " step " << step;
    }
  }
}

// --- cross-scheme property under every kernel ------------------------------

// Identical key streams into FlatCoverageMap and TwoLevelCoverageMap must
// yield identical virgin-map verdicts, new-edge counts, and crash-dedup
// hashes regardless of the selected kernel. Hashes are also pinned across
// kernels per scheme (kernel independence), though not across schemes (the
// two schemes hash different byte layouts by design).
TEST(KernelCrossSchemeTest, IdenticalVerdictsAndKernelIndependentHashes) {
  const usize kMapSize = 1u << 12;
  const u32 kExecs = 40;

  // hash sequences per scheme, one entry per kernel — must all be equal.
  std::vector<std::vector<u32>> flat_hashes, two_hashes;

  for (const KernelOps* k : kernels::runtime_kernels()) {
    MapOptions o;
    o.map_size = kMapSize;
    o.huge_pages = false;
    o.kernel = k->name;

    FlatCoverageMap flat(o);
    TwoLevelCoverageMap two(o);
    VirginMap virgin_flat(flat.map_size());
    VirginMap virgin_two(two.condensed_size());

    Xoshiro256 rng(555);
    std::vector<u32> universe(300);
    for (auto& key : universe) {
      key = static_cast<u32>(rng.next()) & static_cast<u32>(kMapSize - 1);
    }

    std::vector<u32> fh, th;
    for (u32 e = 0; e < kExecs; ++e) {
      flat.reset();
      two.reset();
      const u32 events = 1 + rng.below(200);
      for (u32 i = 0; i < events; ++i) {
        const u32 key = universe[rng.below(
            static_cast<u32>(universe.size()))];
        flat.update(key);
        two.update(key);
      }
      const NewBits nb_flat = flat.classify_and_compare(virgin_flat);
      const NewBits nb_two = two.classify_and_compare(virgin_two);
      ASSERT_EQ(nb_flat, nb_two) << k->name << " exec " << e;
      ASSERT_EQ(flat.count_nonzero(), two.count_nonzero())
          << k->name << " exec " << e;
      fh.push_back(flat.hash());
      th.push_back(two.hash());
    }
    EXPECT_EQ(virgin_flat.count_covered(), virgin_two.count_covered())
        << k->name;
    flat_hashes.push_back(std::move(fh));
    two_hashes.push_back(std::move(th));
  }

  for (usize i = 1; i < flat_hashes.size(); ++i) {
    EXPECT_EQ(flat_hashes[i], flat_hashes[0])
        << "flat crash-dedup hashes diverge under kernel "
        << kernels::runtime_kernels()[i]->name;
    EXPECT_EQ(two_hashes[i], two_hashes[0])
        << "two-level crash-dedup hashes diverge under kernel "
        << kernels::runtime_kernels()[i]->name;
  }
}

// --- §IV-D golden-hash stability -------------------------------------------

// The "hash up to the last non-zero byte" rule: the hash of a path must
// not change when unrelated paths grow used_key afterwards — under every
// kernel, and to the same value across kernels.
TEST(KernelGoldenHashTest, StableAcrossUsedKeyGrowth) {
  const usize kMapSize = 1u << 12;
  std::vector<u32> hashes_before, hashes_after;

  for (const KernelOps* k : kernels::runtime_kernels()) {
    MapOptions o;
    o.map_size = kMapSize;
    o.huge_pages = false;
    o.kernel = k->name;
    TwoLevelCoverageMap map(o);

    Xoshiro256 rng(4242);
    std::vector<u32> path_a(40), path_b(500);
    for (auto& key : path_a) {
      key = static_cast<u32>(rng.next()) & static_cast<u32>(kMapSize - 1);
    }
    for (auto& key : path_b) {
      key = static_cast<u32>(rng.next()) & static_cast<u32>(kMapSize - 1);
    }

    // Execute path A, classify (the hash runs over classified traces in
    // the executor), and hash.
    map.reset();
    for (u32 key : path_a) map.update(key);
    map.classify();
    const u32 before = map.hash();
    const u32 used_before = map.used_key();

    // Unrelated used_key growth: execute a much wider path B.
    map.reset();
    for (u32 key : path_b) map.update(key);
    map.classify();
    ASSERT_GT(map.used_key(), used_before) << k->name;

    // Re-execute path A: same condensed slots, larger used_key.
    map.reset();
    for (u32 key : path_a) map.update(key);
    map.classify();
    const u32 after = map.hash();

    EXPECT_EQ(before, after)
        << "§IV-D hash changed after used_key growth under " << k->name;
    hashes_before.push_back(before);
    hashes_after.push_back(after);
  }

  // And the same hash value under every kernel.
  for (usize i = 1; i < hashes_before.size(); ++i) {
    EXPECT_EQ(hashes_before[i], hashes_before[0])
        << "golden hash diverges under kernel "
        << kernels::runtime_kernels()[i]->name;
  }
}

}  // namespace
}  // namespace bigmap
