// Tests for virgin-map semantics and the has_new_bits comparison.
#include "core/virgin.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/classify.h"
#include "util/rng.h"

namespace bigmap {
namespace {

// Reference byte-by-byte implementation of AFL's has_new_bits.
NewBits reference_compare(const u8* trace, u8* virgin, usize len) {
  NewBits result = NewBits::kNone;
  for (usize i = 0; i < len; ++i) {
    if (trace[i] != 0 && (trace[i] & virgin[i]) != 0) {
      if (virgin[i] == 0xFF) {
        result = NewBits::kNewTuple;
      } else if (result == NewBits::kNone) {
        result = NewBits::kNewCounts;
      }
      virgin[i] = static_cast<u8>(virgin[i] & ~trace[i]);
    }
  }
  return result;
}

TEST(VirginMapTest, InitializedToAllOnes) {
  VirginMap v(256);
  for (usize i = 0; i < v.size(); ++i) EXPECT_EQ(v.data()[i], 0xFF);
  EXPECT_EQ(v.count_covered(), 0u);
}

TEST(VirginMapTest, CountCoveredTracksClearedBytes) {
  VirginMap v(64);
  v.data()[3] = 0xFE;
  v.data()[10] = 0x00;
  EXPECT_EQ(v.count_covered(), 2u);
  v.reset();
  EXPECT_EQ(v.count_covered(), 0u);
}

TEST(CompareVirginTest, EmptyTraceIsNone) {
  std::vector<u8> trace(64, 0);
  VirginMap virgin(64);
  EXPECT_EQ(compare_and_update_virgin(trace.data(), virgin.data(), 64),
            NewBits::kNone);
}

TEST(CompareVirginTest, FirstHitIsNewTuple) {
  std::vector<u8> trace(64, 0);
  trace[5] = 1;
  VirginMap virgin(64);
  EXPECT_EQ(compare_and_update_virgin(trace.data(), virgin.data(), 64),
            NewBits::kNewTuple);
  // Virgin bit cleared: repeating the identical trace is no longer new.
  EXPECT_EQ(compare_and_update_virgin(trace.data(), virgin.data(), 64),
            NewBits::kNone);
}

TEST(CompareVirginTest, NewBucketOnKnownEdgeIsNewCounts) {
  std::vector<u8> trace(64, 0);
  trace[5] = 1;  // bucket 1
  VirginMap virgin(64);
  compare_and_update_virgin(trace.data(), virgin.data(), 64);

  trace[5] = 2;  // bucket 2 on the same edge
  EXPECT_EQ(compare_and_update_virgin(trace.data(), virgin.data(), 64),
            NewBits::kNewCounts);
}

TEST(CompareVirginTest, NewTupleDominatesNewCounts) {
  std::vector<u8> trace(64, 0);
  trace[0] = 1;
  VirginMap virgin(64);
  compare_and_update_virgin(trace.data(), virgin.data(), 64);

  trace[0] = 2;   // would be new-counts
  trace[20] = 1;  // brand-new tuple
  EXPECT_EQ(compare_and_update_virgin(trace.data(), virgin.data(), 64),
            NewBits::kNewTuple);
}

TEST(CompareVirginTest, TailBytesBeyondWordMultipleChecked) {
  // len == 13: tail handling must see position 12.
  std::vector<u8> trace(13, 0);
  trace[12] = 1;
  VirginMap virgin(16);
  EXPECT_EQ(compare_and_update_virgin(trace.data(), virgin.data(), 13),
            NewBits::kNewTuple);
  EXPECT_EQ(virgin.data()[12], 0xFE);
  // Byte 13 must be untouched (outside the compared prefix).
  EXPECT_EQ(virgin.data()[13], 0xFF);
}

TEST(CompareVirginTest, MatchesReferenceOnRandomData) {
  Xoshiro256 rng(2024);
  for (int round = 0; round < 200; ++round) {
    const usize len = 8 * (1 + rng.below(64));
    std::vector<u8> trace(len, 0);
    for (usize i = 0; i < len; ++i) {
      if (rng.chance(1, 8)) trace[i] = classify_count(static_cast<u8>(rng.next()));
    }
    VirginMap v1(len), v2(len);
    // Pre-dirty both virgin maps identically.
    for (usize i = 0; i < len; ++i) {
      if (rng.chance(1, 4)) {
        const u8 d = static_cast<u8>(rng.next() | 1);
        v1.data()[i] = d;
        v2.data()[i] = d;
      }
    }
    std::vector<u8> ref_virgin(v2.data(), v2.data() + len);

    const NewBits fast =
        compare_and_update_virgin(trace.data(), v1.data(), len);
    const NewBits ref =
        reference_compare(trace.data(), ref_virgin.data(), len);

    EXPECT_EQ(fast, ref) << "round " << round;
    EXPECT_EQ(std::memcmp(v1.data(), ref_virgin.data(), len), 0)
        << "round " << round;
  }
}

TEST(ClassifyCompareMergedTest, EquivalentToSequentialOps) {
  Xoshiro256 rng(31337);
  for (int round = 0; round < 200; ++round) {
    const usize len = 8 * (1 + rng.below(32));
    std::vector<u8> raw(len, 0);
    for (usize i = 0; i < len; ++i) {
      if (rng.chance(1, 6)) raw[i] = static_cast<u8>(rng.next());
    }

    // Path A: merged single-pass.
    std::vector<u8> trace_a = raw;
    VirginMap virgin_a(len);
    const NewBits a =
        classify_compare_update(trace_a.data(), virgin_a.data(), len);

    // Path B: classify then compare.
    std::vector<u8> trace_b = raw;
    classify_counts(trace_b.data(), len);
    VirginMap virgin_b(len);
    const NewBits b =
        compare_and_update_virgin(trace_b.data(), virgin_b.data(), len);

    EXPECT_EQ(a, b) << "round " << round;
    EXPECT_EQ(trace_a, trace_b) << "round " << round;
    EXPECT_EQ(std::memcmp(virgin_a.data(), virgin_b.data(), len), 0)
        << "round " << round;
  }
}

TEST(ClassifyCompareMergedTest, OddTailLengths) {
  for (usize len : {1u, 3u, 9u, 15u, 17u, 23u}) {
    std::vector<u8> trace(len, 0);
    trace[len - 1] = 200;  // raw count; classifies to 128
    VirginMap virgin(len + 8);
    const NewBits nb =
        classify_compare_update(trace.data(), virgin.data(), len);
    EXPECT_EQ(nb, NewBits::kNewTuple) << len;
    EXPECT_EQ(trace[len - 1], 128) << len;
  }
}

}  // namespace
}  // namespace bigmap
