// Cross-scheme equivalence properties.
//
// The central correctness claim behind BigMap: for any sequence of test
// cases (key multisets), the two-level scheme makes exactly the same
// interestingness decisions as the flat scheme — the indirection changes
// *where* counts live, never *what* the fuzzer learns. These property tests
// drive both maps with identical random workloads and require identical
// NewBits verdicts at every step.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/coverage_map.h"
#include "util/rng.h"

namespace bigmap {
namespace {

struct WorkloadParams {
  usize map_size;
  u32 distinct_keys;
  u32 execs;
  u64 seed;
  bool merged;
};

class SchemeEquivalenceTest
    : public ::testing::TestWithParam<WorkloadParams> {};

TEST_P(SchemeEquivalenceTest, IdenticalNewBitsDecisions) {
  const auto p = GetParam();

  MapOptions o;
  o.map_size = p.map_size;
  o.huge_pages = false;
  o.merged_classify_compare = p.merged;

  FlatCoverageMap flat(o);
  TwoLevelCoverageMap two(o);
  VirginMap virgin_flat(flat.map_size());
  VirginMap virgin_two(two.condensed_size());

  Xoshiro256 rng(p.seed);
  // A fixed key universe; each exec hits a random subset with random
  // multiplicity — the same stream feeds both maps.
  std::vector<u32> universe(p.distinct_keys);
  for (auto& k : universe) {
    k = static_cast<u32>(rng.next()) & static_cast<u32>(p.map_size - 1);
  }

  for (u32 e = 0; e < p.execs; ++e) {
    flat.reset();
    two.reset();

    const u32 events = 1 + rng.below(200);
    for (u32 i = 0; i < events; ++i) {
      const u32 key = universe[rng.below(p.distinct_keys)];
      flat.update(key);
      two.update(key);
    }

    const NewBits nb_flat = flat.classify_and_compare(virgin_flat);
    const NewBits nb_two = two.classify_and_compare(virgin_two);
    EXPECT_EQ(nb_flat, nb_two) << "exec " << e;

    // Nonzero-count parity: the same number of positions must be hot.
    ASSERT_EQ(flat.count_nonzero(), two.count_nonzero()) << "exec " << e;
  }

  // Global coverage parity: both virgin maps record the same number of
  // covered positions.
  EXPECT_EQ(virgin_flat.count_covered(), virgin_two.count_covered());
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SchemeEquivalenceTest,
    ::testing::Values(WorkloadParams{1u << 10, 16, 100, 1, true},
                      WorkloadParams{1u << 10, 16, 100, 2, false},
                      WorkloadParams{1u << 12, 200, 150, 3, true},
                      WorkloadParams{1u << 16, 1000, 100, 4, true},
                      WorkloadParams{1u << 16, 5000, 60, 5, false},
                      WorkloadParams{1u << 20, 20000, 30, 6, true}));

TEST(SchemeEquivalenceTest, HitCountsMatchPerKey) {
  // Stronger: per-key raw counts agree (flat at the key position, two-level
  // at the condensed slot).
  MapOptions o;
  o.map_size = 1u << 12;
  o.huge_pages = false;
  FlatCoverageMap flat(o);
  TwoLevelCoverageMap two(o);

  Xoshiro256 rng(42);
  std::vector<u32> keys;
  for (int i = 0; i < 300; ++i) {
    const u32 k = rng.below(1u << 12);
    keys.push_back(k);
    flat.update(k);
    two.update(k);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (u32 k : keys) {
    const u32 slot = two.slot_of(k);
    ASSERT_NE(slot, TwoLevelCoverageMap::kUnassigned);
    EXPECT_EQ(flat.trace()[k], two.full_coverage()[slot]) << "key " << k;
  }
}

TEST(SchemeEquivalenceTest, VariantWrapperDispatchesCorrectly) {
  MapOptions o;
  o.map_size = 1u << 10;
  o.huge_pages = false;

  CoverageMapVariant flat(MapScheme::kFlat, o);
  CoverageMapVariant two(MapScheme::kTwoLevel, o);
  EXPECT_EQ(flat.scheme(), MapScheme::kFlat);
  EXPECT_EQ(two.scheme(), MapScheme::kTwoLevel);
  EXPECT_NE(flat.as_flat(), nullptr);
  EXPECT_EQ(flat.as_two_level(), nullptr);
  EXPECT_NE(two.as_two_level(), nullptr);

  VirginMap vf(flat.virgin_size()), vt(two.virgin_size());
  for (u32 k : {5u, 5u, 99u}) {
    flat.update(k);
    two.update(k);
  }
  EXPECT_EQ(flat.classify_and_compare(vf), NewBits::kNewTuple);
  EXPECT_EQ(two.classify_and_compare(vt), NewBits::kNewTuple);
  EXPECT_EQ(flat.count_nonzero(), two.count_nonzero());
  EXPECT_EQ(flat.scan_cost_bytes(), o.map_size);
  EXPECT_EQ(two.scan_cost_bytes(), 2u);  // two distinct keys
}

}  // namespace
}  // namespace bigmap
