// Stress and boundary tests for the coverage maps beyond the unit suites:
// full-map saturation, maximum hit counts, large-map behavior, and the
// flat/two-level equivalence under adversarial key patterns.
#include <gtest/gtest.h>

#include <vector>

#include "core/flat_map.h"
#include "core/two_level_map.h"
#include "util/rng.h"

namespace bigmap {
namespace {

MapOptions opts(usize size) {
  MapOptions o;
  o.map_size = size;
  o.huge_pages = false;
  return o;
}

TEST(MapStressTest, TwoLevelFullSaturationOfHashSpace) {
  // Touch every key of a small hash space: used_key must saturate at
  // map_size exactly, with zero aliasing.
  constexpr usize kSize = 1u << 10;
  TwoLevelCoverageMap m(opts(kSize));
  for (u32 k = 0; k < kSize; ++k) m.update(k);
  EXPECT_EQ(m.used_key(), kSize);
  EXPECT_EQ(m.saturated_updates(), 0u);
  EXPECT_EQ(m.scan_cost_bytes(), kSize);
  // Second pass allocates nothing new.
  for (u32 k = 0; k < kSize; ++k) m.update(k);
  EXPECT_EQ(m.used_key(), kSize);
}

TEST(MapStressTest, SequentialVsScatteredKeysSameDecisions) {
  // Adversarial pattern: one stream uses dense sequential keys, the other
  // the same keys bit-reversed (max scatter). Flat and two-level must
  // agree in both regimes.
  constexpr usize kSize = 1u << 12;
  for (bool scattered : {false, true}) {
    FlatCoverageMap flat(opts(kSize));
    TwoLevelCoverageMap two(opts(kSize));
    VirginMap vf(kSize), vt(two.condensed_size());

    for (int exec = 0; exec < 20; ++exec) {
      flat.reset();
      two.reset();
      for (u32 i = 0; i < 64; ++i) {
        u32 key = exec * 7 + i;
        if (scattered) {
          // bit-reverse within 12 bits
          u32 r = 0;
          for (int b = 0; b < 12; ++b) r |= ((key >> b) & 1u) << (11 - b);
          key = r;
        }
        flat.update(key);
        two.update(key);
      }
      EXPECT_EQ(static_cast<int>(flat.classify_and_compare(vf)),
                static_cast<int>(two.classify_and_compare(vt)))
          << "scattered=" << scattered << " exec=" << exec;
    }
  }
}

TEST(MapStressTest, HitCountWraparoundConsistency) {
  // 256 and 257 hits wrap the u8 counter identically in both schemes.
  FlatCoverageMap flat(opts(256));
  TwoLevelCoverageMap two(opts(256));
  for (int i = 0; i < 257; ++i) {
    flat.update(5);
    two.update(5);
  }
  EXPECT_EQ(flat.trace()[5], 1);  // 257 % 256
  EXPECT_EQ(two.used_region()[two.slot_of(5)], 1);
}

TEST(MapStressTest, LargeMapConstructionAndUse) {
  // 32 MB map (the top of Figure 2's x-axis): construction must be fast
  // (lazy pages) and updates at extreme offsets must work.
  TwoLevelCoverageMap m(opts(32u << 20));
  m.update(0);
  m.update((32u << 20) - 1);
  m.update(12345678);
  EXPECT_EQ(m.used_key(), 3u);
  EXPECT_EQ(m.scan_cost_bytes(), 3u);
  m.classify();
  EXPECT_EQ(m.hash(), m.hash());
}

TEST(MapStressTest, FlatLargeMapScanCostIndependentOfUse) {
  FlatCoverageMap m(opts(8u << 20));
  m.update(1);
  EXPECT_EQ(m.scan_cost_bytes(), 8u << 20);
  m.reset();
  m.classify();
  EXPECT_EQ(m.count_nonzero(), 0u);
}

TEST(MapStressTest, ManyResetCyclesPreserveIndexIntegrity) {
  TwoLevelCoverageMap m(opts(1u << 12));
  Xoshiro256 rng(3);
  std::vector<u32> keys;
  for (int i = 0; i < 100; ++i) keys.push_back(rng.below(1u << 12));

  std::vector<u32> slots;
  for (u32 k : keys) {
    m.update(k);
    slots.push_back(m.slot_of(k));
  }
  for (int cycle = 0; cycle < 1000; ++cycle) {
    m.reset();
    for (u32 k : keys) m.update(k);
  }
  // Slots never move (§IV-B index stability) across 1000 reset cycles.
  for (usize i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(m.slot_of(keys[i]), slots[i]) << i;
  }
}

TEST(MapStressTest, VirginExhaustion) {
  // Cover every position and every bucket: eventually nothing is new.
  constexpr usize kSize = 256;
  TwoLevelCoverageMap m(opts(kSize));
  VirginMap virgin(m.condensed_size());

  for (u32 count = 1; count <= 255; ++count) {
    m.reset();
    for (u32 k = 0; k < kSize; ++k) {
      for (u32 c = 0; c < count; ++c) m.update(k);
    }
    m.classify_and_compare(virgin);
  }
  // All buckets for all keys consumed: a fresh max-bucket trace is stale.
  m.reset();
  for (u32 k = 0; k < kSize; ++k) {
    for (u32 c = 0; c < 200; ++c) m.update(k);
  }
  EXPECT_EQ(m.classify_and_compare(virgin), NewBits::kNone);
}

}  // namespace
}  // namespace bigmap
