// Tests for the deterministic RNG stack.
#include "util/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace bigmap {
namespace {

TEST(SplitMix64Test, DeterministicSequence) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, ReferenceValues) {
  // Reference outputs of SplitMix64 with seed 1234567.
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.next(), 6457827717110365317ULL);
  EXPECT_EQ(sm.next(), 3203168211198807973ULL);
}

TEST(Xoshiro256Test, DeterministicAndSeedSensitive) {
  Xoshiro256 a(1), b(1), c(2);
  bool differs = false;
  for (int i = 0; i < 64; ++i) {
    const u64 va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Xoshiro256Test, ReseedRestartsSequence) {
  Xoshiro256 r(7);
  std::array<u64, 8> first{};
  for (auto& v : first) v = r.next();
  r.reseed(7);
  for (u64 v : first) EXPECT_EQ(r.next(), v);
}

TEST(Xoshiro256Test, BelowStaysInRange) {
  Xoshiro256 r(3);
  for (u32 bound : {1u, 2u, 3u, 10u, 255u, 65536u, 1u << 30}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(r.below(bound), bound);
    }
  }
}

TEST(Xoshiro256Test, BelowZeroBoundReturnsZero) {
  Xoshiro256 r(3);
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Xoshiro256Test, BetweenInclusive) {
  Xoshiro256 r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const u32 v = r.between(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo |= (v == 10);
    saw_hi |= (v == 13);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256Test, UnitInHalfOpenInterval) {
  Xoshiro256 r(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.unit();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Xoshiro256Test, ChanceExtremes) {
  Xoshiro256 r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0, 100));
    EXPECT_TRUE(r.chance(100, 100));
  }
}

TEST(Xoshiro256Test, ChanceApproximatesProbability) {
  Xoshiro256 r(17);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (r.chance(1, 4)) ++hits;
  }
  const double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.25, 0.01);
}

// Uniformity sweep: below(bound) should fill every bucket roughly evenly.
class RngUniformityTest : public ::testing::TestWithParam<u32> {};

TEST_P(RngUniformityTest, BelowIsRoughlyUniform) {
  const u32 bound = GetParam();
  Xoshiro256 r(0xFEEDu + bound);
  std::vector<u32> counts(bound, 0);
  const u32 per_bucket = 2000;
  const u32 total = bound * per_bucket;
  for (u32 i = 0; i < total; ++i) ++counts[r.below(bound)];
  for (u32 b = 0; b < bound; ++b) {
    EXPECT_GT(counts[b], per_bucket / 2) << "bucket " << b;
    EXPECT_LT(counts[b], per_bucket * 2) << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngUniformityTest,
                         ::testing::Values(2, 3, 7, 16, 100));

}  // namespace
}  // namespace bigmap
