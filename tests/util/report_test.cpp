// Tests for the table/CSV report formatting helpers.
#include "util/report.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace bigmap {
namespace {

TEST(TableWriterTest, PrintsHeaderRowsAndSeparator) {
  TableWriter t({"Name", "Value"});
  t.add_row({"zlib", "722"});
  t.add_row({"libpng", "1218"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("zlib"), std::string::npos);
  EXPECT_NE(s.find("1218"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableWriterTest, RejectsWrongWidthRow) {
  TableWriter t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableWriterTest, CsvOutput) {
  TableWriter t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,2,3\n");
}

TEST(FmtDoubleTest, RoundsToDigits) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.14159, 0), "3");
  EXPECT_EQ(fmt_double(-1.005, 1), "-1.0");
}

TEST(FmtCountTest, ThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(1000000000), "1,000,000,000");
}

TEST(FmtBytesTest, BinaryUnits) {
  EXPECT_EQ(fmt_bytes(64 * 1024), "64k");
  EXPECT_EQ(fmt_bytes(256 * 1024), "256k");
  EXPECT_EQ(fmt_bytes(2 * 1024 * 1024), "2M");
  EXPECT_EQ(fmt_bytes(8 * 1024 * 1024), "8M");
  EXPECT_EQ(fmt_bytes(1u << 30), "1G");
  EXPECT_EQ(fmt_bytes(1000), "1000");  // non-multiple falls through
}

}  // namespace
}  // namespace bigmap
