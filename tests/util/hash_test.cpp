// Tests for CRC-32, FNV-1a, and the 64-bit mixers.
#include "util/hash.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

namespace bigmap {
namespace {

std::span<const u8> bytes(const std::string& s) {
  return {reinterpret_cast<const u8*>(s.data()), s.size()};
}

TEST(Crc32Test, KnownVectors) {
  // Standard CRC-32 (IEEE) check values.
  EXPECT_EQ(crc32(bytes("")), 0x00000000u);
  EXPECT_EQ(crc32(bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(bytes("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32Test, SingleByteVectors) {
  EXPECT_EQ(crc32(bytes("a")), 0xE8B7BE43u);
  std::vector<u8> zero{0x00};
  EXPECT_EQ(crc32(zero), 0xD202EF8Du);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string s = "hello, coverage bitmap world";
  const u32 whole = crc32(bytes(s));

  u32 state = kCrc32Init;
  for (char c : s) {
    const u8 b = static_cast<u8>(c);
    state = crc32_update(state, {&b, 1});
  }
  EXPECT_EQ(crc32_finalize(state), whole);
}

TEST(Crc32Test, TrailingZeroChangesHash) {
  // The property BigMap's §IV-D hash rule depends on: crc32({1,1}) !=
  // crc32({1,1,0}).
  const std::vector<u8> a{1, 1};
  const std::vector<u8> b{1, 1, 0};
  EXPECT_NE(crc32(a), crc32(b));
}

TEST(Crc32Test, SensitiveToEveryBytePosition) {
  std::vector<u8> base(64, 0xAB);
  const u32 h0 = crc32(base);
  for (usize i = 0; i < base.size(); ++i) {
    std::vector<u8> mod = base;
    mod[i] ^= 0x01;
    EXPECT_NE(crc32(mod), h0) << "position " << i;
  }
}

TEST(Fnv1a64Test, KnownVectors) {
  EXPECT_EQ(fnv1a64(bytes("")), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64(bytes("a")), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64(bytes("foobar")), 0x85944171f73967e8ULL);
}

TEST(Mix64Test, BijectivityOnSample) {
  // mix64 is a bijection; no two distinct inputs in a large sample may
  // collide.
  std::unordered_set<u64> outputs;
  for (u64 i = 0; i < 100000; ++i) {
    EXPECT_TRUE(outputs.insert(mix64(i)).second) << "collision at " << i;
  }
}

TEST(Mix64Test, ZeroMapsToZero) {
  // The SplitMix64 finalizer maps 0 to 0 — callers that need a non-zero
  // sentinel must handle it; documented behaviour.
  EXPECT_EQ(mix64(0), 0u);
}

TEST(Mix64Test, AvalancheSmoke) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  constexpr int kSamples = 256;
  for (int i = 0; i < kSamples; ++i) {
    const u64 x = 0x9E3779B97F4A7C15ULL * static_cast<u64>(i + 1);
    const u64 flipped = mix64(x) ^ mix64(x ^ 1);
    total_flips += __builtin_popcountll(flipped);
  }
  const double avg = static_cast<double>(total_flips) / kSamples;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashCombineTest, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(HashCombineTest, DistinctPairsDistinctHashes) {
  std::unordered_set<u64> seen;
  for (u64 a = 0; a < 64; ++a) {
    for (u64 b = 0; b < 64; ++b) {
      EXPECT_TRUE(seen.insert(hash_combine(a, b)).second)
          << "collision at (" << a << "," << b << ")";
    }
  }
}

}  // namespace
}  // namespace bigmap
