// Tests for PageBuffer and the non-temporal memset.
#include "util/alloc.h"

#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

namespace bigmap {
namespace {

TEST(PageBufferTest, DefaultIsEmpty) {
  PageBuffer b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.data(), nullptr);
}

TEST(PageBufferTest, AllocatesAndZeroInitializes) {
  PageBuffer b(4096);
  ASSERT_EQ(b.size(), 4096u);
  ASSERT_NE(b.data(), nullptr);
  for (usize i = 0; i < b.size(); ++i) ASSERT_EQ(b[i], 0) << i;
}

TEST(PageBufferTest, NonPageMultipleSizeReportsRequested) {
  PageBuffer b(1000);
  EXPECT_EQ(b.size(), 1000u);
  b[999] = 42;
  EXPECT_EQ(b[999], 42);
}

TEST(PageBufferTest, WritableAcrossWholeRange) {
  PageBuffer b(1u << 20);
  std::memset(b.data(), 0x5A, b.size());
  EXPECT_EQ(b[0], 0x5A);
  EXPECT_EQ(b[b.size() - 1], 0x5A);
}

TEST(PageBufferTest, MoveTransfersOwnership) {
  PageBuffer a(8192);
  a[0] = 7;
  u8* ptr = a.data();
  PageBuffer b(std::move(a));
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b.size(), 8192u);
  EXPECT_EQ(b[0], 7);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(a.size(), 0u);
}

TEST(PageBufferTest, MoveAssignReleasesOld) {
  PageBuffer a(4096), b(8192);
  b = std::move(a);
  EXPECT_EQ(b.size(), 4096u);
}

TEST(PageBufferTest, HugeBackingFallsBackGracefully) {
  // Whatever the host supports, the allocation must succeed and be usable.
  PageBuffer b(4u << 20, PageBacking::kHugeIfAvailable);
  ASSERT_EQ(b.size(), 4u << 20);
  b[0] = 1;
  b[b.size() - 1] = 2;
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(b[b.size() - 1], 2);
}

TEST(PageBufferTest, SmallHugeRequestUsesNormalPages) {
  PageBuffer b(4096, PageBacking::kHugeIfAvailable);
  EXPECT_EQ(b.backing(), PageBackingResult::kNormal);
}

TEST(NontemporalMemsetTest, ZeroesExactRange) {
  std::vector<u8> buf(4096 + 13, 0xFF);
  // Zero an unaligned interior range; bytes outside must be untouched.
  memset_zero_nontemporal(buf.data() + 5, 4096);
  EXPECT_EQ(buf[4], 0xFF);
  for (usize i = 5; i < 5 + 4096; ++i) ASSERT_EQ(buf[i], 0) << i;
  EXPECT_EQ(buf[5 + 4096], 0xFF);
}

TEST(NontemporalMemsetTest, TinyAndEmptyRanges) {
  std::vector<u8> buf(64, 0xEE);
  memset_zero_nontemporal(buf.data(), 0);
  EXPECT_EQ(buf[0], 0xEE);
  memset_zero_nontemporal(buf.data() + 1, 3);
  EXPECT_EQ(buf[0], 0xEE);
  EXPECT_EQ(buf[1], 0);
  EXPECT_EQ(buf[2], 0);
  EXPECT_EQ(buf[3], 0);
  EXPECT_EQ(buf[4], 0xEE);
}

class NontemporalSizeTest : public ::testing::TestWithParam<usize> {};

TEST_P(NontemporalSizeTest, MatchesPlainMemset) {
  const usize len = GetParam();
  std::vector<u8> a(len + 32, 0xAA), b(len + 32, 0xAA);
  memset_zero_nontemporal(a.data() + 16, len);
  std::memset(b.data() + 16, 0, len);
  EXPECT_EQ(a, b) << "len=" << len;
}

INSTANTIATE_TEST_SUITE_P(Sizes, NontemporalSizeTest,
                         ::testing::Values(1, 7, 15, 16, 17, 63, 64, 65, 127,
                                           1024, 4095, 65536));

}  // namespace
}  // namespace bigmap
