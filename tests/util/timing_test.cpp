// Tests for the Figure 3 timing-breakdown accounting.
#include "util/timing.h"

#include <gtest/gtest.h>

namespace bigmap {
namespace {

TEST(OpTimeBreakdownTest, StartsEmpty) {
  OpTimeBreakdown b;
  EXPECT_EQ(b.total_ns(), 0u);
  for (usize i = 0; i < kNumMapOps; ++i) {
    EXPECT_EQ(b.ns(static_cast<MapOp>(i)), 0u);
  }
}

TEST(OpTimeBreakdownTest, AccumulatesPerCategory) {
  OpTimeBreakdown b;
  b.add(MapOp::kReset, 100);
  b.add(MapOp::kReset, 50);
  b.add(MapOp::kHash, 25);
  EXPECT_EQ(b.ns(MapOp::kReset), 150u);
  EXPECT_EQ(b.ns(MapOp::kHash), 25u);
  EXPECT_EQ(b.total_ns(), 175u);
}

TEST(OpTimeBreakdownTest, FractionsSumToOne) {
  OpTimeBreakdown b;
  b.add(MapOp::kExecution, 300);
  b.add(MapOp::kClassify, 100);
  EXPECT_DOUBLE_EQ(b.fraction(MapOp::kExecution), 0.75);
  EXPECT_DOUBLE_EQ(b.fraction(MapOp::kClassify), 0.25);
  EXPECT_DOUBLE_EQ(b.fraction(MapOp::kHash), 0.0);
}

TEST(OpTimeBreakdownTest, FractionOfEmptyIsZero) {
  OpTimeBreakdown b;
  EXPECT_DOUBLE_EQ(b.fraction(MapOp::kReset), 0.0);
}

TEST(OpTimeBreakdownTest, PlusEqualsMerges) {
  OpTimeBreakdown a, b;
  a.add(MapOp::kCompare, 10);
  b.add(MapOp::kCompare, 5);
  b.add(MapOp::kOther, 7);
  a += b;
  EXPECT_EQ(a.ns(MapOp::kCompare), 15u);
  EXPECT_EQ(a.ns(MapOp::kOther), 7u);
}

TEST(OpTimeBreakdownTest, ResetClears) {
  OpTimeBreakdown b;
  b.add(MapOp::kExecution, 42);
  b.reset();
  EXPECT_EQ(b.total_ns(), 0u);
}

TEST(ScopedOpTimerTest, AttributesElapsedTime) {
  OpTimeBreakdown b;
  {
    ScopedOpTimer t(b, MapOp::kClassify);
    // Burn a little time.
    volatile u64 x = 0;
    for (int i = 0; i < 10000; ++i) x += i;
    (void)x;
  }
  EXPECT_GT(b.ns(MapOp::kClassify), 0u);
  EXPECT_EQ(b.ns(MapOp::kReset), 0u);
}

TEST(MapOpNameTest, AllCategoriesNamed) {
  EXPECT_EQ(map_op_name(MapOp::kExecution), "Execution");
  EXPECT_EQ(map_op_name(MapOp::kReset), "Map Reset");
  EXPECT_EQ(map_op_name(MapOp::kClassify), "Map Classify");
  EXPECT_EQ(map_op_name(MapOp::kCompare), "Map Compare");
  EXPECT_EQ(map_op_name(MapOp::kHash), "Map Hash");
  EXPECT_EQ(map_op_name(MapOp::kOther), "Others");
}

TEST(MonotonicNsTest, MonotonicallyNonDecreasing) {
  u64 prev = monotonic_ns();
  for (int i = 0; i < 1000; ++i) {
    const u64 now = monotonic_ns();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace bigmap
