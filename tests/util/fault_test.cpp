// Tests for the deterministic fault injector.
#include "util/fault.h"

#include <gtest/gtest.h>

#include <new>
#include <thread>
#include <vector>

#include "util/alloc.h"

namespace bigmap {
namespace {

TEST(FaultInjectorTest, TriggerFiresOnExactOccurrenceOnly) {
  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kExecAbort, /*instance=*/3,
                           /*nth=*/2});
  FaultInjector inj(1, plan);

  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(inj.fire(FaultSite::kExecAbort, 2)) << i;
  }
  EXPECT_FALSE(inj.fire(FaultSite::kExecAbort, 3));  // n = 0
  EXPECT_FALSE(inj.fire(FaultSite::kExecAbort, 3));  // n = 1
  EXPECT_TRUE(inj.fire(FaultSite::kExecAbort, 3));   // n = 2
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(inj.fire(FaultSite::kExecAbort, 3)) << i;
  }
}

TEST(FaultInjectorTest, CountersAreIndependentPerSiteAndInstance) {
  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kInstanceKill, 0, 0});
  FaultInjector inj(7, plan);

  // Burning occurrences of other sites / instances must not consume the
  // kInstanceKill counter of instance 0.
  EXPECT_FALSE(inj.fire(FaultSite::kExecAbort, 0));
  EXPECT_FALSE(inj.fire(FaultSite::kInstanceKill, 1));
  EXPECT_TRUE(inj.fire(FaultSite::kInstanceKill, 0));
}

TEST(FaultInjectorTest, RateDecisionsAreSeedDeterministic) {
  FaultPlan plan;
  plan.rates.push_back({FaultSite::kPublishDrop, /*per_million=*/200000});

  std::vector<bool> first, second;
  FaultInjector a(42, plan);
  FaultInjector b(42, plan);
  for (int i = 0; i < 500; ++i) {
    first.push_back(a.fire(FaultSite::kPublishDrop, 1));
    second.push_back(b.fire(FaultSite::kPublishDrop, 1));
  }
  EXPECT_EQ(first, second);

  // ~20% of 500 occurrences; the exact count is seed-determined, so a wide
  // bracket is safe and permanent.
  const u64 injected = a.stats().injected[
      static_cast<usize>(FaultSite::kPublishDrop)];
  EXPECT_GT(injected, 50u);
  EXPECT_LT(injected, 200u);
}

TEST(FaultInjectorTest, RateInstanceFilterApplies) {
  FaultPlan plan;
  plan.rates.push_back(
      {FaultSite::kExecAbort, /*per_million=*/1000000, /*instance=*/5});
  FaultInjector inj(3, plan);
  EXPECT_TRUE(inj.fire(FaultSite::kExecAbort, 5));
  EXPECT_FALSE(inj.fire(FaultSite::kExecAbort, 4));
}

TEST(FaultInjectorTest, StatsAndPerInstanceAccounting) {
  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kExecAbort, 0, 0});
  plan.triggers.push_back({FaultSite::kTransientHang, 1, 0});
  FaultInjector inj(9, plan);

  EXPECT_TRUE(inj.fire(FaultSite::kExecAbort, 0));
  EXPECT_FALSE(inj.fire(FaultSite::kExecAbort, 0));
  EXPECT_TRUE(inj.fire(FaultSite::kTransientHang, 1));

  const FaultStats s = inj.stats();
  EXPECT_EQ(s.checked_total(), 3u);
  EXPECT_EQ(s.injected_total(), 2u);
  EXPECT_EQ(s.injected[static_cast<usize>(FaultSite::kExecAbort)], 1u);
  EXPECT_EQ(inj.injected_for(0), 1u);
  EXPECT_EQ(inj.injected_for(1), 1u);
  EXPECT_EQ(inj.injected_for(2), 0u);
}

TEST(FaultInjectorTest, ScopedBindingInjectsAllocationFailure) {
  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kAllocFail, /*instance=*/7, 0});
  FaultInjector inj(5, plan);

  // No binding: the injector is invisible to the allocation path.
  EXPECT_NO_THROW({ PageBuffer ok(4096, PageBacking::kNormal); });

  FaultInjector::ScopedThreadBinding bind(&inj, 7);
  EXPECT_THROW({ PageBuffer fail(4096, PageBacking::kNormal); },
               std::bad_alloc);
  // The trigger was the first occurrence only; the retry succeeds.
  EXPECT_NO_THROW({ PageBuffer retry(4096, PageBacking::kNormal); });
}

TEST(FaultInjectorTest, ThreadBindingIsPerThread) {
  FaultPlan plan;
  plan.rates.push_back({FaultSite::kAllocFail, /*per_million=*/1000000});
  FaultInjector inj(5, plan);
  FaultInjector::ScopedThreadBinding bind(&inj, 0);

  bool other_thread_threw = false;
  std::thread t([&]() {
    try {
      PageBuffer ok(4096, PageBacking::kNormal);
    } catch (const std::bad_alloc&) {
      other_thread_threw = true;
    }
  });
  t.join();
  EXPECT_FALSE(other_thread_threw);
}

}  // namespace
}  // namespace bigmap
