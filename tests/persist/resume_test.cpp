// Campaign-level checkpoint/resume tests: a campaign that checkpoints and
// is later relaunched with resume_from_checkpoint continues its lifetime
// exec budget and keeps every find, while identity mismatches and empty
// stores degrade to clean cold starts.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>

#include "fuzzer/campaign.h"
#include "persist/checkpoint.h"
#include "target/generator.h"
#include "telemetry/sink.h"

namespace bigmap {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const char* tag) {
    path = (fs::temp_directory_path() /
            (std::string("bigmap_resume_") + tag + "_" +
             std::to_string(static_cast<unsigned>(::getpid()))))
               .string();
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

GeneratedTarget make_target() {
  GeneratorParams gp;
  gp.seed = 33;
  gp.live_blocks = 200;
  gp.num_bugs = 3;
  gp.bug_min_depth = 1;
  gp.bug_max_depth = 1;
  return generate_target(gp);
}

CampaignConfig make_config() {
  CampaignConfig c;
  c.scheme = MapScheme::kTwoLevel;
  c.map.map_size = 1u << 16;
  c.map.huge_pages = false;
  c.seed = 501;
  c.max_execs = 4000;
  c.deterministic_timing = true;
  return c;
}

bool is_subset(std::vector<u32> small, std::vector<u32> big) {
  std::sort(small.begin(), small.end());
  std::sort(big.begin(), big.end());
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

TEST(CampaignResumeTest, ResumeContinuesLifetimeBudgetAndKeepsFinds) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);
  TempDir dir("budget");

  persist::CheckpointStore store1(dir.path, persist::FaultCtx{},
                                  /*fresh=*/true);
  CampaignConfig c1 = make_config();
  c1.checkpoint = &store1;
  c1.checkpoint_interval = 1024;
  auto r1 = run_campaign(target.program, seeds, c1);
  EXPECT_FALSE(r1.resumed);
  EXPECT_EQ(r1.execs, 4000u);
  // Periodic checkpoints plus the final one at clean completion.
  EXPECT_GE(r1.checkpoints_written, 4u);
  EXPECT_EQ(r1.checkpoint_failures, 0u);

  persist::CheckpointStore store2(dir.path, persist::FaultCtx{},
                                  /*fresh=*/false);
  CampaignConfig c2 = make_config();
  c2.checkpoint = &store2;
  c2.checkpoint_interval = 1024;
  c2.resume_from_checkpoint = true;
  c2.max_execs = 8000;
  auto r2 = run_campaign(target.program, seeds, c2);
  EXPECT_TRUE(r2.resumed);
  EXPECT_EQ(r2.resumed_from_execs, 4000u);
  // The budget is a lifetime bound: the resumed segment runs 4000 more
  // execs, not 8000.
  EXPECT_EQ(r2.execs, 8000u);

  // Every identity found before the checkpoint survives the resume.
  EXPECT_TRUE(is_subset(r1.found_bug_ids, r2.found_bug_ids));
  EXPECT_GE(r2.found_stack_hashes.size(), r1.found_stack_hashes.size());
  EXPECT_GE(r2.covered_positions, r1.covered_positions);
}

TEST(CampaignResumeTest, ResumeAtExhaustedBudgetFinalizesImmediately) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);
  TempDir dir("spent");

  persist::CheckpointStore store1(dir.path, persist::FaultCtx{}, true);
  CampaignConfig c1 = make_config();
  c1.checkpoint = &store1;
  auto r1 = run_campaign(target.program, seeds, c1);
  ASSERT_EQ(r1.execs, 4000u);

  // Same budget on resume: the snapshot already satisfies it.
  persist::CheckpointStore store2(dir.path, persist::FaultCtx{}, false);
  CampaignConfig c2 = make_config();
  c2.checkpoint = &store2;
  c2.resume_from_checkpoint = true;
  auto r2 = run_campaign(target.program, seeds, c2);
  EXPECT_TRUE(r2.resumed);
  EXPECT_EQ(r2.execs, 4000u);
  auto sorted = [](auto v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(r2.found_bug_ids), sorted(r1.found_bug_ids));
  EXPECT_EQ(sorted(r2.found_stack_hashes), sorted(r1.found_stack_hashes));
}

TEST(CampaignResumeTest, EmptyStoreFallsBackToColdStart) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);
  TempDir dir("empty");

  persist::CheckpointStore store(dir.path, persist::FaultCtx{}, false);
  CampaignConfig c = make_config();
  c.checkpoint = &store;
  c.resume_from_checkpoint = true;
  auto r = run_campaign(target.program, seeds, c);
  EXPECT_FALSE(r.resumed);
  EXPECT_EQ(r.execs, 4000u);
  EXPECT_EQ(store.stats().cold_starts, 1u);
}

TEST(CampaignResumeTest, IdentityMismatchFallsBackToColdStart) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);
  TempDir dir("identity");

  persist::CheckpointStore store1(dir.path, persist::FaultCtx{}, true);
  CampaignConfig c1 = make_config();
  c1.checkpoint = &store1;
  auto r1 = run_campaign(target.program, seeds, c1);
  ASSERT_GE(r1.checkpoints_written, 1u);

  // A different RNG seed is a different campaign: the snapshot must not
  // restore into it.
  persist::CheckpointStore store2(dir.path, persist::FaultCtx{}, false);
  CampaignConfig c2 = make_config();
  c2.checkpoint = &store2;
  c2.resume_from_checkpoint = true;
  c2.seed = 777;
  auto r2 = run_campaign(target.program, seeds, c2);
  EXPECT_FALSE(r2.resumed);
  EXPECT_EQ(r2.execs, 4000u);
}

TEST(CampaignResumeTest, CheckpointCadenceFollowsInterval) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);
  TempDir dir("cadence");

  persist::CheckpointStore store(dir.path, persist::FaultCtx{}, true);
  CampaignConfig c = make_config();
  c.checkpoint = &store;
  c.checkpoint_interval = 500;
  c.max_execs = 2600;
  auto r = run_campaign(target.program, seeds, c);
  // ~5 periodic checkpoints plus the final commit; rotation keeps the
  // directory bounded regardless.
  EXPECT_GE(r.checkpoints_written, 5u);
  EXPECT_EQ(store.stats().save_failures, 0u);
  usize snaps = 0;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    if (e.path().extension() == ".bms") ++snaps;
  }
  EXPECT_LE(snaps, c.keep_checkpoints);
}

TEST(CampaignResumeTest, TelemetryRestorePrimesLifetimeCounters) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);
  TempDir dir("telemetry");

  persist::CheckpointStore store1(dir.path, persist::FaultCtx{}, true);
  CampaignConfig c1 = make_config();
  c1.checkpoint = &store1;
  auto r1 = run_campaign(target.program, seeds, c1);
  ASSERT_EQ(r1.execs, 4000u);

  telemetry::TelemetrySink sink;
  persist::CheckpointStore store2(dir.path, persist::FaultCtx{}, false);
  CampaignConfig c2 = make_config();
  c2.checkpoint = &store2;
  c2.resume_from_checkpoint = true;
  c2.telemetry_restore = true;
  c2.telemetry = &sink;
  c2.max_execs = 6000;
  auto r2 = run_campaign(target.program, seeds, c2);
  ASSERT_TRUE(r2.resumed);
  // The fresh sink was primed with the snapshot's lifetime totals, so its
  // exec counter matches the lifetime result, not just this segment.
  EXPECT_EQ(sink.execs.get(), r2.execs);
  EXPECT_EQ(sink.checkpoints_loaded.get(), 1u);
}

}  // namespace
}  // namespace bigmap
