// Snapshot format tests: round-trip property over randomized states, a
// golden pin of the v1 layout, and byte-flip corruption drills (any
// single-byte flip anywhere must be recovered or rejected cleanly — never
// decoded into a different state, never UB; the ASan CI job runs these).
#include "persist/snapshot.h"

#include <gtest/gtest.h>

#include <random>

#include "util/hash.h"

namespace bigmap::persist {
namespace {

CampaignSnapshot small_snapshot() {
  CampaignSnapshot s;
  s.scheme = 1;
  s.metric = 0;
  s.seed = 501;
  s.instance_id = 2;
  s.map_size = 8;
  s.virgin_size = 4;
  s.checkpoint_seq = 3;
  s.execs = 10000;
  s.seed_execs = 12;
  s.seed_seconds = 0.5;
  s.interesting = 34;
  s.hangs = 1;
  s.trim_execs = 56;
  s.trimmed_bytes = 789;
  s.faulted_execs = 2;
  s.injected_hangs = 1;
  s.crashes_total = 9;
  s.crashes_afl_unique = 4;
  s.tracing_untraced_execs = 9000;
  s.tracing_traced_execs = 1000;
  s.tracing_oracle_fires = 40;
  s.tracing_reexec_ns = 123456;
  s.rng_state = {1, 2, 3, 4};
  s.mutator_rng_state = {5, 6, 7, 8};
  QueueEntrySnap e;
  e.data = {0xDE, 0xAD};
  e.exec_ns = 1200;
  e.bitmap_hash = 0xABCD;
  e.depth = 2;
  e.favored = true;
  e.was_fuzzed = true;
  e.times_selected = 7;
  s.entries.push_back(e);
  s.top_entry = {0, 0xFFFFFFFFu, 0, 0xFFFFFFFFu};
  s.top_factor = {100, 0, 50, 0};
  s.top_covered = 2;
  s.virgin_queue = {0xFF, 0xFE, 0xFF, 0x7F};
  s.virgin_crash = {0xFF, 0xFF, 0xFF, 0xFF};
  s.virgin_hang = {0xFF, 0xFF, 0xFF, 0xFF};
  s.has_two_level = true;
  s.index_bitmap = {0, 0xFFFFFFFFu, 1, 0xFFFFFFFFu,
                    0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu};
  s.used_key = 2;
  s.saturated_updates = 0;
  s.bug_ids = {3, 17};
  s.stack_hashes = {0x1111222233334444ull};
  s.in_cycle = true;
  s.cycle_qi = 1;
  s.cycle_len = 1;
  s.cycle_avg_ns = 1200;
  return s;
}

void expect_equal(const CampaignSnapshot& a, const CampaignSnapshot& b) {
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.metric, b.metric);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.instance_id, b.instance_id);
  EXPECT_EQ(a.map_size, b.map_size);
  EXPECT_EQ(a.virgin_size, b.virgin_size);
  EXPECT_EQ(a.checkpoint_seq, b.checkpoint_seq);
  EXPECT_EQ(a.execs, b.execs);
  EXPECT_EQ(a.seed_execs, b.seed_execs);
  EXPECT_EQ(a.seed_seconds, b.seed_seconds);
  EXPECT_EQ(a.interesting, b.interesting);
  EXPECT_EQ(a.hangs, b.hangs);
  EXPECT_EQ(a.trim_execs, b.trim_execs);
  EXPECT_EQ(a.trimmed_bytes, b.trimmed_bytes);
  EXPECT_EQ(a.faulted_execs, b.faulted_execs);
  EXPECT_EQ(a.injected_hangs, b.injected_hangs);
  EXPECT_EQ(a.crashes_total, b.crashes_total);
  EXPECT_EQ(a.crashes_afl_unique, b.crashes_afl_unique);
  EXPECT_EQ(a.tracing_untraced_execs, b.tracing_untraced_execs);
  EXPECT_EQ(a.tracing_traced_execs, b.tracing_traced_execs);
  EXPECT_EQ(a.tracing_oracle_fires, b.tracing_oracle_fires);
  EXPECT_EQ(a.tracing_reexec_ns, b.tracing_reexec_ns);
  EXPECT_EQ(a.rng_state, b.rng_state);
  EXPECT_EQ(a.mutator_rng_state, b.mutator_rng_state);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (usize i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].data, b.entries[i].data) << i;
    EXPECT_EQ(a.entries[i].exec_ns, b.entries[i].exec_ns) << i;
    EXPECT_EQ(a.entries[i].bitmap_hash, b.entries[i].bitmap_hash) << i;
    EXPECT_EQ(a.entries[i].depth, b.entries[i].depth) << i;
    EXPECT_EQ(a.entries[i].favored, b.entries[i].favored) << i;
    EXPECT_EQ(a.entries[i].was_fuzzed, b.entries[i].was_fuzzed) << i;
    EXPECT_EQ(a.entries[i].times_selected, b.entries[i].times_selected)
        << i;
  }
  EXPECT_EQ(a.top_entry, b.top_entry);
  EXPECT_EQ(a.top_factor, b.top_factor);
  EXPECT_EQ(a.top_covered, b.top_covered);
  EXPECT_EQ(a.in_cycle, b.in_cycle);
  EXPECT_EQ(a.cycle_qi, b.cycle_qi);
  EXPECT_EQ(a.cycle_len, b.cycle_len);
  EXPECT_EQ(a.cycle_avg_ns, b.cycle_avg_ns);
  EXPECT_EQ(a.virgin_queue, b.virgin_queue);
  EXPECT_EQ(a.virgin_crash, b.virgin_crash);
  EXPECT_EQ(a.virgin_hang, b.virgin_hang);
  EXPECT_EQ(a.has_two_level, b.has_two_level);
  EXPECT_EQ(a.index_bitmap, b.index_bitmap);
  EXPECT_EQ(a.used_key, b.used_key);
  EXPECT_EQ(a.saturated_updates, b.saturated_updates);
  EXPECT_EQ(a.bug_ids, b.bug_ids);
  EXPECT_EQ(a.stack_hashes, b.stack_hashes);
}

TEST(SnapshotFormatTest, SmallSnapshotRoundTrips) {
  const CampaignSnapshot s = small_snapshot();
  DecodeResult d = decode_snapshot(encode_snapshot(s));
  ASSERT_EQ(d.status, LoadStatus::kOk);
  ASSERT_TRUE(d.snapshot.has_value());
  expect_equal(s, *d.snapshot);
}

// Property: any structurally valid snapshot round-trips exactly. States are
// randomized from fixed seeds so failures replay.
TEST(SnapshotFormatTest, RandomizedStatesRoundTrip) {
  for (u64 seed = 1; seed <= 24; ++seed) {
    std::mt19937_64 rng(seed);
    auto pick = [&](u64 bound) { return rng() % bound; };

    CampaignSnapshot s;
    s.scheme = static_cast<u32>(pick(2));
    s.metric = static_cast<u32>(pick(3));
    s.seed = rng();
    s.instance_id = static_cast<u32>(pick(16));
    s.map_size = 1 + pick(64);
    s.virgin_size = 1 + pick(64);
    s.checkpoint_seq = 1 + pick(1000);
    s.execs = rng();
    s.seed_execs = rng();
    s.seed_seconds = static_cast<double>(pick(1000)) / 8.0;
    s.interesting = rng();
    s.hangs = rng();
    s.trim_execs = rng();
    s.trimmed_bytes = rng();
    s.faulted_execs = rng();
    s.injected_hangs = rng();
    s.crashes_total = rng();
    s.crashes_afl_unique = rng();
    s.tracing_untraced_execs = rng();
    s.tracing_traced_execs = rng();
    s.tracing_oracle_fires = rng();
    s.tracing_reexec_ns = rng();
    for (u64& v : s.rng_state) v = rng();
    for (u64& v : s.mutator_rng_state) v = rng();

    const usize num_entries = pick(12);
    for (usize i = 0; i < num_entries; ++i) {
      QueueEntrySnap e;
      e.data.resize(pick(64));  // empty inputs allowed
      for (u8& b : e.data) b = static_cast<u8>(rng());
      e.exec_ns = rng();
      e.bitmap_hash = static_cast<u32>(rng());
      e.depth = static_cast<u32>(pick(40));
      e.favored = pick(2) != 0;
      e.was_fuzzed = pick(2) != 0;
      e.times_selected = pick(100);
      s.entries.push_back(std::move(e));
    }

    const usize positions = pick(32);
    s.top_entry.resize(positions);
    s.top_factor.resize(positions);
    for (usize i = 0; i < positions; ++i) {
      s.top_entry[i] = pick(2) != 0 ? static_cast<u32>(pick(num_entries + 1))
                                    : 0xFFFFFFFFu;
      s.top_factor[i] = rng();
    }
    s.top_covered = pick(positions + 1);

    for (auto* v : {&s.virgin_queue, &s.virgin_crash, &s.virgin_hang}) {
      v->resize(static_cast<usize>(s.virgin_size));
      for (u8& b : *v) b = static_cast<u8>(rng());
    }

    s.has_two_level = pick(2) != 0;
    if (s.has_two_level) {
      s.index_bitmap.resize(static_cast<usize>(s.map_size));
      for (u32& v : s.index_bitmap) v = static_cast<u32>(rng());
      s.used_key = static_cast<u32>(pick(s.virgin_size + 1));
      s.saturated_updates = pick(10);
    }

    s.bug_ids.resize(pick(8));
    for (u32& v : s.bug_ids) v = static_cast<u32>(rng());
    s.stack_hashes.resize(pick(8));
    for (u64& v : s.stack_hashes) v = rng();

    s.in_cycle = pick(2) != 0;
    if (s.in_cycle) {
      s.cycle_len = pick(num_entries + 1);
      s.cycle_qi = pick(s.cycle_len + 1);
      s.cycle_avg_ns = rng();
    }

    DecodeResult d = decode_snapshot(encode_snapshot(s));
    ASSERT_EQ(d.status, LoadStatus::kOk) << "seed " << seed;
    ASSERT_TRUE(d.snapshot.has_value()) << "seed " << seed;
    expect_equal(s, *d.snapshot);
  }
}

// Golden pin of the v1 layout: record sequence, file size, and a CRC over
// the whole encoding of a fixed snapshot. Any change to the wire format
// trips this test — bump kFormatVersion and re-pin deliberately.
TEST(SnapshotFormatTest, GoldenV1Layout) {
  const std::vector<u8> bytes = encode_snapshot(small_snapshot());

  ParsedFile parsed = parse_records(bytes);
  ASSERT_EQ(parsed.status, LoadStatus::kOk);
  const RecordType expected_sequence[] = {
      RecordType::kCampaignHeader, RecordType::kCounters,
      RecordType::kTracingState,   RecordType::kRngState,
      RecordType::kQueueMeta,      RecordType::kCycleCursor,
      RecordType::kQueueEntry,     RecordType::kTopRated,
      RecordType::kVirginMap,      RecordType::kVirginMap,
      RecordType::kVirginMap,      RecordType::kMapState,
      RecordType::kTriage,         RecordType::kCommit,
  };
  ASSERT_EQ(parsed.records.size(), std::size(expected_sequence));
  for (usize i = 0; i < parsed.records.size(); ++i) {
    EXPECT_EQ(parsed.records[i].type, expected_sequence[i]) << i;
  }

  EXPECT_EQ(bytes.size(), 685u);
  EXPECT_EQ(crc32({bytes.data(), bytes.size()}), 0x75811041u);
}

// Golden pin of the kTracingState record itself (the PR's additive record,
// following the kCycleCursor precedent): payload is exactly 4 little-endian
// u64s in untraced/traced/fires/reexec_ns order. The byte-level pin keeps
// the record decodable by every future reader.
TEST(SnapshotFormatTest, GoldenTracingStateRecordLayout) {
  const std::vector<u8> bytes = encode_snapshot(small_snapshot());
  ParsedFile parsed = parse_records(bytes);
  ASSERT_EQ(parsed.status, LoadStatus::kOk);

  const RecordView* rec = nullptr;
  for (const RecordView& r : parsed.records) {
    if (r.type == RecordType::kTracingState) rec = &r;
  }
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->payload.size(), 32u);

  const auto le64 = [&](usize off) {
    u64 v = 0;
    for (usize i = 0; i < 8; ++i) {
      v |= static_cast<u64>(rec->payload[off + i]) << (8 * i);
    }
    return v;
  };
  EXPECT_EQ(le64(0), 9000u);    // tracing_untraced_execs
  EXPECT_EQ(le64(8), 1000u);    // tracing_traced_execs
  EXPECT_EQ(le64(16), 40u);     // tracing_oracle_fires
  EXPECT_EQ(le64(24), 123456u); // tracing_reexec_ns
}

// A snapshot encoded WITHOUT the kTracingState record (a pre-tracing
// writer) must decode fine with zeroed tracing counters — the record is
// additive, not versioned.
TEST(SnapshotFormatTest, MissingTracingStateRecordDecodesAsZeros) {
  const std::vector<u8> bytes = encode_snapshot(small_snapshot());
  ParsedFile parsed = parse_records(bytes);
  ASSERT_EQ(parsed.status, LoadStatus::kOk);

  // Re-encode the file dropping the kTracingState record (header + every
  // other record verbatim — records are self-contained, so splicing one
  // out keeps the rest valid).
  std::vector<u8> stripped(bytes.begin(),
                           bytes.begin() + static_cast<long>(kFileHeaderSize));
  usize off = kFileHeaderSize;
  for (const RecordView& r : parsed.records) {
    const usize rec_size =
        kRecordHeaderSize + r.payload.size() + kRecordTrailerSize;
    if (r.type != RecordType::kTracingState) {
      stripped.insert(stripped.end(), bytes.begin() + static_cast<long>(off),
                      bytes.begin() + static_cast<long>(off + rec_size));
    }
    off += rec_size;
  }

  DecodeResult d = decode_snapshot(stripped);
  ASSERT_EQ(d.status, LoadStatus::kOk);
  ASSERT_TRUE(d.snapshot.has_value());
  EXPECT_EQ(d.snapshot->tracing_untraced_execs, 0u);
  EXPECT_EQ(d.snapshot->tracing_traced_execs, 0u);
  EXPECT_EQ(d.snapshot->tracing_oracle_fires, 0u);
  EXPECT_EQ(d.snapshot->tracing_reexec_ns, 0u);
  EXPECT_EQ(d.snapshot->execs, 10000u);  // everything else survives
}

// Corruption drill: flipping any single byte anywhere in the file must
// yield a clean rejection (status != kOk, no snapshot) — the CRC per
// record plus the header checks leave no byte uncovered.
TEST(SnapshotFormatTest, FlipAnyByteRejectsCleanly) {
  const std::vector<u8> base = encode_snapshot(small_snapshot());
  for (usize i = 0; i < base.size(); ++i) {
    std::vector<u8> corrupt = base;
    corrupt[i] ^= 0xFF;
    DecodeResult d = decode_snapshot(corrupt);
    EXPECT_NE(d.status, LoadStatus::kOk) << "byte " << i;
    EXPECT_FALSE(d.snapshot.has_value()) << "byte " << i;
  }
}

// Truncation drill: every prefix of the file must be rejected cleanly —
// a torn write can stop after any byte.
TEST(SnapshotFormatTest, EveryTruncationRejectsCleanly) {
  const std::vector<u8> base = encode_snapshot(small_snapshot());
  for (usize len = 0; len < base.size(); ++len) {
    DecodeResult d = decode_snapshot({base.data(), len});
    EXPECT_NE(d.status, LoadStatus::kOk) << "len " << len;
    EXPECT_FALSE(d.snapshot.has_value()) << "len " << len;
  }
}

// Cross-check drills: internally inconsistent snapshots are rejected as
// bad payloads even though every record checksums cleanly.
TEST(SnapshotFormatTest, StructuralMismatchesAreBadPayload) {
  {
    CampaignSnapshot s = small_snapshot();
    s.virgin_crash.push_back(0xFF);  // virgin size disagrees with header
    EXPECT_EQ(decode_snapshot(encode_snapshot(s)).status,
              LoadStatus::kBadPayload);
  }
  {
    CampaignSnapshot s = small_snapshot();
    s.top_factor.pop_back();  // top arrays disagree
    EXPECT_EQ(decode_snapshot(encode_snapshot(s)).status,
              LoadStatus::kBadPayload);
  }
  {
    CampaignSnapshot s = small_snapshot();
    s.used_key = static_cast<u32>(s.virgin_size) + 1;  // bump past the map
    EXPECT_EQ(decode_snapshot(encode_snapshot(s)).status,
              LoadStatus::kBadPayload);
  }
  {
    CampaignSnapshot s = small_snapshot();
    s.index_bitmap.pop_back();  // index does not cover the map
    EXPECT_EQ(decode_snapshot(encode_snapshot(s)).status,
              LoadStatus::kBadPayload);
  }
}

// A snapshot without its commit marker — torn between the last record and
// the commit — parses as records but is rejected as a whole.
TEST(SnapshotFormatTest, MissingCommitIsRejected) {
  const CampaignSnapshot s = small_snapshot();
  const std::vector<u8> whole = encode_snapshot(s);
  ParsedFile parsed = parse_records(whole);
  ASSERT_EQ(parsed.records.back().type, RecordType::kCommit);
  const usize commit_start =
      static_cast<usize>(parsed.records.back().payload.data() -
                         whole.data()) -
      kRecordHeaderSize;
  DecodeResult d = decode_snapshot({whole.data(), commit_start});
  EXPECT_EQ(d.status, LoadStatus::kNoCommit);
  EXPECT_FALSE(d.snapshot.has_value());
}

}  // namespace
}  // namespace bigmap::persist
