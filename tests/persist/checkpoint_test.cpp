// CheckpointStore / FleetStore tests: rotation, fallback-to-previous-good,
// cold starts, journal replay — and a deterministic drill of every injected
// I/O fault site (short write, corrupt read, rename failure, ENOSPC).
#include "persist/checkpoint.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "persist/fleet.h"
#include "util/fault.h"

namespace bigmap::persist {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const char* tag) {
    path = (fs::temp_directory_path() /
            (std::string("bigmap_ckpt_") + tag + "_" +
             std::to_string(static_cast<unsigned>(::getpid()))))
               .string();
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

CampaignSnapshot snap_with(u64 execs) {
  CampaignSnapshot s;
  s.scheme = 1;
  s.seed = 9;
  s.map_size = 4;
  s.virgin_size = 4;
  s.execs = execs;
  s.virgin_queue.assign(4, 0xFF);
  s.virgin_crash.assign(4, 0xFF);
  s.virgin_hang.assign(4, 0xFF);
  s.has_two_level = true;
  s.index_bitmap.assign(4, 0xFFFFFFFFu);
  s.bug_ids = {static_cast<u32>(execs % 97)};
  return s;
}

usize count_snaps(const std::string& dir) {
  usize n = 0;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    if (e.path().extension() == ".bms") ++n;
  }
  return n;
}

TEST(CheckpointStoreTest, SaveLoadRoundTrip) {
  TempDir dir("roundtrip");
  CheckpointStore store(dir.path, FaultCtx{}, /*fresh=*/true);
  std::string err;
  ASSERT_TRUE(store.save(snap_with(1000), /*keep=*/2, &err)) << err;

  auto out = store.load_latest();
  ASSERT_TRUE(out.snapshot.has_value());
  EXPECT_EQ(out.snapshot->execs, 1000u);
  EXPECT_EQ(out.snapshot->checkpoint_seq, 1u);
  EXPECT_EQ(out.snapshots_skipped, 0u);

  PersistStats st = store.stats();
  EXPECT_EQ(st.checkpoints_written, 1u);
  EXPECT_EQ(st.checkpoints_loaded, 1u);
  EXPECT_GT(st.checkpoint_bytes, 0u);
  EXPECT_EQ(st.recoveries_total(), 0u);
}

TEST(CheckpointStoreTest, RotationPrunesOldest) {
  TempDir dir("rotate");
  CheckpointStore store(dir.path, FaultCtx{}, true);
  std::string err;
  for (u64 i = 1; i <= 5; ++i) {
    ASSERT_TRUE(store.save(snap_with(i * 100), /*keep=*/2, &err)) << err;
  }
  EXPECT_EQ(count_snaps(dir.path), 2u);
  auto out = store.load_latest();
  ASSERT_TRUE(out.snapshot.has_value());
  EXPECT_EQ(out.snapshot->execs, 500u);
  EXPECT_EQ(out.snapshot->checkpoint_seq, 5u);
}

TEST(CheckpointStoreTest, ResumeContinuesSequenceNumbers) {
  TempDir dir("seq");
  {
    CheckpointStore store(dir.path, FaultCtx{}, true);
    std::string err;
    ASSERT_TRUE(store.save(snap_with(100), 4, &err));
    ASSERT_TRUE(store.save(snap_with(200), 4, &err));
  }
  CheckpointStore resumed(dir.path, FaultCtx{}, /*fresh=*/false);
  EXPECT_EQ(resumed.next_seq(), 3u);
  std::string err;
  ASSERT_TRUE(resumed.save(snap_with(300), 4, &err));
  auto out = resumed.load_latest();
  ASSERT_TRUE(out.snapshot.has_value());
  EXPECT_EQ(out.snapshot->checkpoint_seq, 3u);
}

TEST(CheckpointStoreTest, FreshOpenWipesOldSnapshots) {
  TempDir dir("fresh");
  {
    CheckpointStore store(dir.path, FaultCtx{}, true);
    std::string err;
    ASSERT_TRUE(store.save(snap_with(100), 4, &err));
  }
  CheckpointStore store(dir.path, FaultCtx{}, /*fresh=*/true);
  EXPECT_EQ(count_snaps(dir.path), 0u);
  auto out = store.load_latest();
  EXPECT_FALSE(out.snapshot.has_value());
  EXPECT_EQ(store.stats().cold_starts, 1u);
}

TEST(CheckpointStoreTest, EmptyDirectoryIsColdStart) {
  TempDir dir("cold");
  CheckpointStore store(dir.path, FaultCtx{}, true);
  auto out = store.load_latest();
  EXPECT_FALSE(out.snapshot.has_value());
  EXPECT_EQ(store.stats().cold_starts, 1u);
}

TEST(CheckpointStoreTest, CorruptNewestFallsBackToPreviousGood) {
  TempDir dir("corrupt");
  CheckpointStore store(dir.path, FaultCtx{}, true);
  std::string err;
  ASSERT_TRUE(store.save(snap_with(100), 4, &err));
  ASSERT_TRUE(store.save(snap_with(200), 4, &err));

  // Flip one byte in the middle of the newest snapshot on disk.
  const std::string newest = dir.path + "/snap-2.bms";
  ASSERT_TRUE(fs::exists(newest));
  {
    std::fstream f(newest,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<long>(f.tellg());
    f.seekp(size / 2);
    char b;
    f.seekg(size / 2);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0xFF);
    f.seekp(size / 2);
    f.write(&b, 1);
  }

  auto out = store.load_latest();
  ASSERT_TRUE(out.snapshot.has_value());
  EXPECT_EQ(out.snapshot->execs, 100u);
  EXPECT_EQ(out.snapshots_skipped, 1u);
  PersistStats st = store.stats();
  EXPECT_EQ(st.fallbacks, 1u);
  EXPECT_EQ(st.recovered_bad_crc, 1u);
}

TEST(CheckpointStoreTest, TruncatedNewestFallsBackToPreviousGood) {
  TempDir dir("torn");
  CheckpointStore store(dir.path, FaultCtx{}, true);
  std::string err;
  ASSERT_TRUE(store.save(snap_with(100), 4, &err));
  ASSERT_TRUE(store.save(snap_with(200), 4, &err));

  const std::string newest = dir.path + "/snap-2.bms";
  const auto size = fs::file_size(newest);
  fs::resize_file(newest, size - 5);

  auto out = store.load_latest();
  ASSERT_TRUE(out.snapshot.has_value());
  EXPECT_EQ(out.snapshot->execs, 100u);
  PersistStats st = store.stats();
  EXPECT_EQ(st.fallbacks, 1u);
  EXPECT_EQ(st.recovered_torn_tail, 1u);
}

TEST(CheckpointStoreTest, AllSnapshotsDamagedIsCleanColdStart) {
  TempDir dir("alldead");
  CheckpointStore store(dir.path, FaultCtx{}, true);
  std::string err;
  ASSERT_TRUE(store.save(snap_with(100), 4, &err));
  ASSERT_TRUE(store.save(snap_with(200), 4, &err));
  for (const char* name : {"/snap-1.bms", "/snap-2.bms"}) {
    fs::resize_file(dir.path + name, 6);  // not even a file header
  }
  auto out = store.load_latest();
  EXPECT_FALSE(out.snapshot.has_value());
  EXPECT_EQ(out.snapshots_skipped, 2u);
  EXPECT_EQ(store.stats().cold_starts, 1u);
}

// --- injected I/O fault drills ----------------------------------------------

TEST(CheckpointFaultDrillTest, NoSpaceFailsSaveAndKeepsPrevious) {
  TempDir dir("nospace");
  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kNoSpace, 0, 1});
  FaultInjector inj(5, plan);
  CheckpointStore store(dir.path, FaultCtx{&inj, 0}, true);

  std::string err;
  ASSERT_TRUE(store.save(snap_with(100), 4, &err));
  EXPECT_FALSE(store.save(snap_with(200), 4, &err));  // injected ENOSPC
  EXPECT_NE(err.find("no space"), std::string::npos) << err;
  ASSERT_TRUE(store.save(snap_with(300), 4, &err)) << err;

  auto out = store.load_latest();
  ASSERT_TRUE(out.snapshot.has_value());
  EXPECT_EQ(out.snapshot->execs, 300u);
  PersistStats st = store.stats();
  EXPECT_EQ(st.save_failures, 1u);
  EXPECT_EQ(st.checkpoints_written, 2u);
}

TEST(CheckpointFaultDrillTest, ShortWriteTearsFileAndLoadRecovers) {
  TempDir dir("shortwrite");
  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kShortWrite, 0, 1});
  FaultInjector inj(5, plan);
  CheckpointStore store(dir.path, FaultCtx{&inj, 0}, true);

  std::string err;
  ASSERT_TRUE(store.save(snap_with(100), 4, &err));
  // The short write models a crash after renaming partially-flushed data:
  // the torn file lands at the final path and save reports failure.
  EXPECT_FALSE(store.save(snap_with(200), 4, &err));
  EXPECT_EQ(count_snaps(dir.path), 2u);

  auto out = store.load_latest();
  ASSERT_TRUE(out.snapshot.has_value());
  EXPECT_EQ(out.snapshot->execs, 100u);  // fell back past the torn file
  EXPECT_EQ(out.snapshots_skipped, 1u);
  PersistStats st = store.stats();
  EXPECT_EQ(st.save_failures, 1u);
  EXPECT_EQ(st.fallbacks, 1u);
  EXPECT_GE(st.recovered_torn_tail, 1u);
}

TEST(CheckpointFaultDrillTest, RenameFailLosesCommitOnly) {
  TempDir dir("renamefail");
  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kRenameFail, 0, 1});
  FaultInjector inj(5, plan);
  CheckpointStore store(dir.path, FaultCtx{&inj, 0}, true);

  std::string err;
  ASSERT_TRUE(store.save(snap_with(100), 4, &err));
  EXPECT_FALSE(store.save(snap_with(200), 4, &err));
  // The commit never happened: no torn file, no temp litter.
  EXPECT_EQ(count_snaps(dir.path), 1u);

  auto out = store.load_latest();
  ASSERT_TRUE(out.snapshot.has_value());
  EXPECT_EQ(out.snapshot->execs, 100u);
  EXPECT_EQ(out.snapshots_skipped, 0u);  // nothing to fall past
}

TEST(CheckpointFaultDrillTest, CorruptReadFallsBackToPreviousGood) {
  TempDir dir("corruptread");
  CheckpointStore store(dir.path, FaultCtx{}, true);
  std::string err;
  ASSERT_TRUE(store.save(snap_with(100), 4, &err));
  ASSERT_TRUE(store.save(snap_with(200), 4, &err));

  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kCorruptRead, 0, 0});
  FaultInjector inj(5, plan);
  store.set_fault(FaultCtx{&inj, 0});

  auto out = store.load_latest();
  ASSERT_TRUE(out.snapshot.has_value());
  EXPECT_EQ(out.snapshot->execs, 100u);  // newest read came back flipped
  EXPECT_EQ(out.snapshots_skipped, 1u);
  PersistStats st = store.stats();
  EXPECT_EQ(st.recovered_bad_crc, 1u);
  EXPECT_EQ(st.fallbacks, 1u);
}

// --- fleet journal ----------------------------------------------------------

FleetFingerprint fleet_fp() {
  FleetFingerprint fp;
  fp.num_instances = 4;
  fp.base_seed = 501;
  fp.seed_stride = 1;
  fp.max_execs = 10000;
  fp.scheme = 1;
  fp.metric = 0;
  fp.map_size = 65536;
  return fp;
}

InstanceEvent event_for(u32 instance, u32 state, u64 execs) {
  InstanceEvent ev;
  ev.instance = instance;
  ev.final_state = state;
  ev.attempts = 1;
  ev.execs = execs;
  ev.segment_max_execs = 10000;
  return ev;
}

TEST(FleetStoreTest, ResumeReplaysLatestEventPerInstance) {
  TempDir dir("fleet");
  std::string err;
  {
    FleetStore store(dir.path, fleet_fp(), FaultCtx{}, /*resume=*/false);
    ASSERT_TRUE(store.ok()) << store.error();
    EXPECT_FALSE(store.resumed());
    ASSERT_TRUE(store.append_event(event_for(0, kEventRunning, 2000), &err));
    ASSERT_TRUE(store.append_event(event_for(1, kEventCompleted, 10000),
                                   &err));
    ASSERT_TRUE(store.append_event(event_for(0, kEventRunning, 4000), &err));
  }
  FleetStore resumed(dir.path, fleet_fp(), FaultCtx{}, /*resume=*/true);
  ASSERT_TRUE(resumed.ok()) << resumed.error();
  EXPECT_TRUE(resumed.resumed());
  auto e0 = resumed.last_event(0);
  ASSERT_TRUE(e0.has_value());
  EXPECT_EQ(e0->execs, 4000u);  // last event wins
  auto e1 = resumed.last_event(1);
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(e1->final_state, kEventCompleted);
  EXPECT_FALSE(resumed.last_event(2).has_value());
  EXPECT_EQ(resumed.stats().journal_events, 3u);
}

TEST(FleetStoreTest, TornJournalTailDropsOnlyLastEvent) {
  TempDir dir("fleettorn");
  std::string err;
  {
    FleetStore store(dir.path, fleet_fp(), FaultCtx{}, false);
    ASSERT_TRUE(store.append_event(event_for(0, kEventRunning, 2000), &err));
    ASSERT_TRUE(store.append_event(event_for(0, kEventRunning, 4000), &err));
  }
  // Tear the tail: chop a few bytes off the final append.
  const std::string journal = dir.path + "/fleet.journal";
  fs::resize_file(journal, fs::file_size(journal) - 3);

  FleetStore resumed(dir.path, fleet_fp(), FaultCtx{}, true);
  ASSERT_TRUE(resumed.ok()) << resumed.error();
  EXPECT_TRUE(resumed.resumed());
  auto e0 = resumed.last_event(0);
  ASSERT_TRUE(e0.has_value());
  EXPECT_EQ(e0->execs, 2000u);  // partial final event discarded
  EXPECT_EQ(resumed.stats().journal_tail_dropped, 1u);

  // The truncation repaired the journal: appends continue cleanly.
  ASSERT_TRUE(resumed.append_event(event_for(0, kEventCompleted, 10000),
                                   &err));
  FleetStore again(dir.path, fleet_fp(), FaultCtx{}, true);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.last_event(0)->final_state, kEventCompleted);
}

TEST(FleetStoreTest, FingerprintMismatchIsAnError) {
  TempDir dir("fleetfp");
  {
    FleetStore store(dir.path, fleet_fp(), FaultCtx{}, false);
    ASSERT_TRUE(store.ok());
  }
  FleetFingerprint other = fleet_fp();
  other.max_execs = 20000;
  FleetStore resumed(dir.path, other, FaultCtx{}, true);
  EXPECT_FALSE(resumed.ok());
  EXPECT_NE(resumed.error().find("fingerprint"), std::string::npos);
}

TEST(FleetStoreTest, MissingJournalDegradesToColdStart) {
  TempDir dir("fleetmissing");
  FleetStore store(dir.path, fleet_fp(), FaultCtx{}, /*resume=*/true);
  ASSERT_TRUE(store.ok()) << store.error();
  EXPECT_FALSE(store.resumed());
  EXPECT_EQ(store.stats().cold_starts, 1u);
}

TEST(FleetStoreTest, InstanceStoresAreFreshOnlyForFreshFleets) {
  TempDir dir("fleetstores");
  std::string err;
  {
    FleetStore store(dir.path, fleet_fp(), FaultCtx{}, false);
    ASSERT_TRUE(store.instance_store(1).save(snap_with(700), 2, &err))
        << err;
  }
  {
    // Resume keeps the snapshots on disk.
    FleetStore store(dir.path, fleet_fp(), FaultCtx{}, true);
    auto out = store.instance_store(1).load_latest();
    ASSERT_TRUE(out.snapshot.has_value());
    EXPECT_EQ(out.snapshot->execs, 700u);
  }
  {
    // A fresh open wipes everything.
    FleetStore store(dir.path, fleet_fp(), FaultCtx{}, false);
    auto out = store.instance_store(1).load_latest();
    EXPECT_FALSE(out.snapshot.has_value());
  }
}

}  // namespace
}  // namespace bigmap::persist
