// Tests for the versioned, CRC-checked record format: framing round trips,
// the truncated-tail recovery rule, and bounds-checked payload decoding.
#include "persist/record.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bigmap::persist {
namespace {

std::vector<u8> three_record_file() {
  RecordWriter w;
  w.append(RecordType::kCampaignHeader, [](PayloadWriter& p) {
    p.put_u32(7);
    p.put_u64(42);
  });
  w.append(RecordType::kCounters,
           [](PayloadWriter& p) { p.put_u64(123456789); });
  w.append(RecordType::kCommit, [](PayloadWriter& p) { p.put_u64(1); });
  return w.finish();
}

TEST(RecordFormatTest, WriterParserRoundTrip) {
  const std::vector<u8> file = three_record_file();
  ParsedFile parsed = parse_records(file);
  EXPECT_EQ(parsed.status, LoadStatus::kOk);
  EXPECT_EQ(parsed.valid_bytes, file.size());
  ASSERT_EQ(parsed.records.size(), 3u);
  EXPECT_EQ(parsed.records[0].type, RecordType::kCampaignHeader);
  EXPECT_EQ(parsed.records[1].type, RecordType::kCounters);
  EXPECT_EQ(parsed.records[2].type, RecordType::kCommit);

  PayloadReader r(parsed.records[0].payload);
  u32 a = 0;
  u64 b = 0;
  EXPECT_TRUE(r.get_u32(&a));
  EXPECT_TRUE(r.get_u64(&b));
  EXPECT_TRUE(r.done());
  EXPECT_EQ(a, 7u);
  EXPECT_EQ(b, 42u);
}

TEST(RecordFormatTest, FileHeaderIsMagicThenVersion) {
  const std::vector<u8> file = three_record_file();
  ASSERT_GE(file.size(), kFileHeaderSize);
  // "BMSP" in byte order, then version 1 little-endian.
  EXPECT_EQ(file[0], 'B');
  EXPECT_EQ(file[1], 'M');
  EXPECT_EQ(file[2], 'S');
  EXPECT_EQ(file[3], 'P');
  EXPECT_EQ(file[4], 1);
  EXPECT_EQ(file[5], 0);
  EXPECT_EQ(file[6], 0);
  EXPECT_EQ(file[7], 0);
}

TEST(RecordFormatTest, ShortOrForeignFilesAreBadMagic) {
  EXPECT_EQ(parse_records({}).status, LoadStatus::kBadMagic);
  const std::vector<u8> tiny{1, 2, 3};
  EXPECT_EQ(parse_records(tiny).status, LoadStatus::kBadMagic);
  std::vector<u8> foreign = three_record_file();
  foreign[0] ^= 0xFF;
  EXPECT_EQ(parse_records(foreign).status, LoadStatus::kBadMagic);
}

TEST(RecordFormatTest, FutureVersionIsRejected) {
  std::vector<u8> file = three_record_file();
  file[4] = 2;  // format_version 2
  ParsedFile parsed = parse_records(file);
  EXPECT_EQ(parsed.status, LoadStatus::kBadVersion);
  EXPECT_TRUE(parsed.records.empty());
}

TEST(RecordFormatTest, TruncatedTailKeepsValidPrefix) {
  const std::vector<u8> file = three_record_file();
  // Cut into the last record: every cut point between "end of record 2"
  // and "end of record 3" must yield exactly two records.
  ParsedFile whole = parse_records(file);
  ASSERT_EQ(whole.records.size(), 3u);
  const usize second_end =
      static_cast<usize>(whole.records[2].payload.data() - file.data()) -
      kRecordHeaderSize;
  for (usize cut = second_end; cut < file.size(); ++cut) {
    ParsedFile parsed = parse_records({file.data(), cut});
    // At the exact boundary the file is merely shorter (still valid);
    // any byte into the third record is a torn tail. Either way the
    // two complete records survive and valid_bytes marks the boundary.
    EXPECT_EQ(parsed.status,
              cut == second_end ? LoadStatus::kOk
                                : LoadStatus::kTruncatedTail)
        << cut;
    EXPECT_EQ(parsed.records.size(), 2u) << cut;
    EXPECT_EQ(parsed.valid_bytes, second_end) << cut;
  }
}

TEST(RecordFormatTest, BitFlipInRecordIsBadCrc) {
  const std::vector<u8> base = three_record_file();
  // Flip one byte inside the second record's payload.
  ParsedFile whole = parse_records(base);
  const usize off =
      static_cast<usize>(whole.records[1].payload.data() - base.data());
  std::vector<u8> file = base;
  file[off] ^= 0x01;
  ParsedFile parsed = parse_records(file);
  EXPECT_EQ(parsed.status, LoadStatus::kBadCrc);
  EXPECT_EQ(parsed.records.size(), 1u);  // first record still usable
}

TEST(RecordFormatTest, OversizedLengthFieldIsTruncatedTail) {
  std::vector<u8> file = three_record_file();
  // Blow up the first record's payload_len so it runs past the buffer.
  file[kFileHeaderSize + 4] = 0xFF;
  file[kFileHeaderSize + 5] = 0xFF;
  file[kFileHeaderSize + 6] = 0xFF;
  file[kFileHeaderSize + 7] = 0x7F;
  ParsedFile parsed = parse_records(file);
  EXPECT_EQ(parsed.status, LoadStatus::kTruncatedTail);
  EXPECT_TRUE(parsed.records.empty());
}

TEST(PayloadReaderTest, GettersStopAtTheEnd) {
  const std::vector<u8> four{1, 2, 3, 4};
  PayloadReader r(four);
  u64 v64 = 99;
  EXPECT_FALSE(r.get_u64(&v64));
  EXPECT_EQ(v64, 99u);  // output untouched on failure
  u32 v32 = 0;
  EXPECT_TRUE(r.get_u32(&v32));
  EXPECT_EQ(v32, 0x04030201u);
  u8 v8 = 0;
  EXPECT_FALSE(r.get_u8(&v8));
  EXPECT_TRUE(r.done());
}

TEST(PayloadReaderTest, GetBytesRejectsOverflowingLengths) {
  const std::vector<u8> buf(16, 0xAB);
  PayloadReader r(buf);
  std::span<const u8> out;
  EXPECT_FALSE(r.get_bytes(17, &out));
  EXPECT_TRUE(r.get_bytes(16, &out));
  EXPECT_EQ(out.size(), 16u);
  // A length crafted to wrap pos + n around must not pass the check.
  PayloadReader r2(buf);
  EXPECT_FALSE(r2.get_bytes(static_cast<usize>(-1), &out));
}

TEST(PayloadReaderTest, F64RoundTripsThroughBits) {
  std::vector<u8> buf;
  PayloadWriter w(buf);
  w.put_f64(3.25);
  w.put_f64(-0.0);
  PayloadReader r(buf);
  double a = 0, b = 1;
  EXPECT_TRUE(r.get_f64(&a));
  EXPECT_TRUE(r.get_f64(&b));
  EXPECT_EQ(a, 3.25);
  EXPECT_EQ(b, 0.0);
  EXPECT_TRUE(std::signbit(b));
}

}  // namespace
}  // namespace bigmap::persist
