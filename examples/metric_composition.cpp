// Coverage-metric composition (paper §V-C): stack the laf-intel
// transformation with N-gram(3) coverage on a large target — the
// combination that makes 64kB maps collide on ~80% of keys — and compare
// a 64kB map against a 2MB map, both running BigMap.
//
//   ./build/examples/metric_composition [seconds-per-config]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "analysis/collision.h"
#include "fuzzer/campaign.h"
#include "target/lafintel.h"
#include "target/suite.h"
#include "util/report.h"

using namespace bigmap;

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 4.0;

  const BenchmarkInfo* info = find_benchmark("gvn+comp");
  GeneratedTarget target = build_benchmark(*info);

  // Ingredient 1: laf-intel — split multi-byte compares, switches, and
  // string gates into single-byte cascades.
  LafIntelStats laf;
  Program program = apply_laf_intel(target.program, &laf);
  std::printf("laf-intel: %zu -> %zu blocks, %zu -> %zu static edges "
              "(%zu compares, %zu switches, %zu strgates split)\n",
              laf.blocks_before, laf.blocks_after,
              laf.static_edges_before, laf.static_edges_after,
              laf.split_compares, laf.split_switches, laf.split_strgates);

  std::vector<Input> seeds = benchmark_seeds(target, *info);
  if (seeds.size() > 128) seeds.resize(128);

  // Ingredient 2: N-gram(3) coverage, selected per campaign below.
  TableWriter table({"Map", "Distinct keys", "Collision@64k", "Crashes",
                     "Exec/s"});
  for (usize size : {64u << 10, 2u << 20}) {
    CampaignConfig config;
    config.scheme = MapScheme::kTwoLevel;
    config.metric = MetricKind::kNGram;
    config.map.map_size = size;
    config.max_seconds = seconds;
    config.max_execs = 0;
    config.seed = 3;
    CampaignResult r = run_campaign(program, seeds, config);

    table.add_row(
        {fmt_bytes(size), fmt_count(r.used_key),
         fmt_double(collision_rate(65536.0, r.used_key) * 100, 1) + "%",
         fmt_count(r.crashes_crashwalk_unique),
         fmt_double(r.steady_throughput(), 0)});
  }
  table.print(std::cout);

  std::printf(
      "\nThe composition multiplies distinct coverage keys well past what "
      "a 64kB map can hold; BigMap makes the 2MB map free, and the extra "
      "feedback fidelity shows up as more unique crashes (paper: +33%%).\n");
  return 0;
}
