// The paper's headline experiment in miniature: fuzz the same target with
// AFL's flat map and BigMap's two-level map at growing map sizes, and
// watch the flat scheme's throughput collapse while BigMap stays flat.
//
//   ./build/examples/map_size_comparison [seconds-per-config]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "fuzzer/campaign.h"
#include "target/suite.h"
#include "util/report.h"

using namespace bigmap;

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 2.0;

  // Use the sqlite3 profile: ~41k discoverable edges, the paper's largest
  // FuzzBench benchmark.
  const BenchmarkInfo* info = find_benchmark("sqlite3");
  GeneratedTarget target = build_benchmark(*info);
  std::vector<Input> seeds = benchmark_seeds(target, *info);
  if (seeds.size() > 200) seeds.resize(200);

  std::printf("fuzzing '%s' (%zu blocks) for %.1fs per configuration...\n\n",
              info->name.c_str(), target.program.blocks.size(), seconds);

  TableWriter table(
      {"Map size", "AFL exec/s", "BigMap exec/s", "BigMap speedup"});
  for (usize size : {64u << 10, 256u << 10, 2u << 20, 8u << 20}) {
    double tput[2] = {0, 0};
    for (MapScheme scheme : {MapScheme::kFlat, MapScheme::kTwoLevel}) {
      CampaignConfig config;
      config.scheme = scheme;
      config.map.map_size = size;
      config.max_seconds = seconds;
      config.max_execs = 0;
      config.seed = 1;
      CampaignResult r = run_campaign(target.program, seeds, config);
      tput[scheme == MapScheme::kTwoLevel] = r.steady_throughput();
    }
    table.add_row({fmt_bytes(size), fmt_double(tput[0], 0),
                   fmt_double(tput[1], 0),
                   fmt_double(tput[0] > 0 ? tput[1] / tput[0] : 0, 1) + "x"});
  }
  table.print(std::cout);

  std::printf(
      "\nAFL pays for every byte of the map on every test case; BigMap "
      "pays only for the edges it has actually seen.\n");
  return 0;
}
