// Parallel fuzzing with corpus synchronization (paper §V-D): several
// instances in the master-secondary configuration share interesting
// inputs through a SyncHub, exactly like AFL's -M/-S output-directory
// sync. Instances run as threads; each keeps its own map and queue.
//
//   ./build/examples/parallel_fuzzing [instances] [execs-per-instance]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <unordered_set>
#include <vector>

#include "fuzzer/campaign.h"
#include "fuzzer/sync.h"
#include "target/generator.h"
#include "util/report.h"

using namespace bigmap;

int main(int argc, char** argv) {
  const u32 instances = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 4;
  const u64 execs = argc > 2 ? static_cast<u64>(std::atoll(argv[2])) : 30000;

  GeneratorParams params;
  params.name = "parallel-target";
  params.seed = 77;
  params.live_blocks = 3000;
  params.num_bugs = 12;
  params.bug_min_depth = 1;
  params.bug_max_depth = 3;
  GeneratedTarget target = generate_target(params);
  std::vector<Input> seeds = make_seed_corpus(target, 8, 1);

  std::printf("fuzzing '%s' with %u instances x %llu execs (2MB BigMap)\n\n",
              params.name.c_str(), instances,
              static_cast<unsigned long long>(execs));

  SyncHub hub(instances);
  std::vector<CampaignResult> results(instances);
  std::vector<std::thread> threads;
  for (u32 id = 0; id < instances; ++id) {
    threads.emplace_back([&, id]() {
      CampaignConfig config;
      config.scheme = MapScheme::kTwoLevel;
      config.map.map_size = 2u << 20;
      config.max_execs = execs;
      config.seed = 1000 + id;
      config.sync = &hub;
      config.sync_id = id;
      config.sync_interval = 2048;
      config.is_master = (id == 0);  // master runs deterministic stages
      config.run_deterministic = (id == 0);
      results[id] = run_campaign(target.program, seeds, config);
    });
  }
  for (auto& t : threads) t.join();

  TableWriter table({"Instance", "Role", "Execs", "Covered", "Corpus",
                     "Crashes(cw)"});
  std::unordered_set<u64> crash_union;
  std::unordered_set<u32> bug_union;
  for (u32 id = 0; id < instances; ++id) {
    const auto& r = results[id];
    table.add_row({std::to_string(id), id == 0 ? "master" : "secondary",
                   fmt_count(r.execs), fmt_count(r.covered_positions),
                   fmt_count(r.corpus_size),
                   fmt_count(r.crashes_crashwalk_unique)});
    crash_union.insert(r.found_stack_hashes.begin(),
                       r.found_stack_hashes.end());
    bug_union.insert(r.found_bug_ids.begin(), r.found_bug_ids.end());
  }
  table.print(std::cout);

  std::printf("\nshared corpus entries published: %zu\n",
              hub.total_published());
  std::printf("union of unique crashes: %zu (Crashwalk), %zu of %u "
              "planted bugs\n",
              crash_union.size(), bug_union.size(),
              target.program.num_bugs);
  return 0;
}
