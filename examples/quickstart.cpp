// Quickstart: fuzz a small synthetic target with BigMap's two-level map.
//
// Shows the minimal public-API flow: generate (or supply) a target
// program, make a seed corpus, configure a campaign, run it, and read the
// results. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "fuzzer/campaign.h"
#include "target/generator.h"

using namespace bigmap;

int main() {
  // 1. A synthetic target: 800 live blocks, 6 planted bugs behind short
  //    magic-byte chains.
  GeneratorParams params;
  params.name = "quickstart-target";
  params.seed = 42;
  params.live_blocks = 800;
  params.num_bugs = 6;
  params.bug_min_depth = 1;
  params.bug_max_depth = 2;
  GeneratedTarget target = generate_target(params);

  std::printf("target: %zu blocks, %zu static edges, %u bugs planted\n",
              target.program.blocks.size(),
              target.program.static_edge_count(), target.program.num_bugs);

  // 2. A seed corpus (deterministic).
  std::vector<Input> seeds = make_seed_corpus(target, /*count=*/8,
                                              /*seed=*/1);

  // 3. Campaign configuration: BigMap scheme, a generous 2MB map (the
  //    whole point: map size is no longer a cost), 50k test cases.
  CampaignConfig config;
  config.scheme = MapScheme::kTwoLevel;
  config.map.map_size = 2u << 20;
  config.max_execs = 50000;
  config.seed = 7;
  config.dictionary = target.dictionary();  // AFL -x style tokens

  // 4. Run.
  CampaignResult result = run_campaign(target.program, seeds, config);

  // 5. Results.
  std::printf("\nran %llu test cases in %.2fs (%.0f exec/s)\n",
              static_cast<unsigned long long>(result.execs),
              result.wall_seconds, result.throughput());
  std::printf("distinct coverage keys (used_key): %u of %zu map slots\n",
              result.used_key, result.map_size);
  std::printf("covered map positions: %zu\n", result.covered_positions);
  std::printf("corpus grew from %zu seeds to %zu entries\n", seeds.size(),
              result.corpus_size);
  std::printf("crashes: %llu total, %llu unique (Crashwalk), %llu of %u "
              "planted bugs found\n",
              static_cast<unsigned long long>(result.crashes_total),
              static_cast<unsigned long long>(
                  result.crashes_crashwalk_unique),
              static_cast<unsigned long long>(result.crashes_ground_truth),
              target.program.num_bugs);
  return 0;
}
