// Hash-collision damage, demonstrated mechanically (paper §II-B/§III).
//
// Builds a tiny program with two edges whose coverage keys collide in a
// small map, and shows that the fuzzer's fitness function cannot tell them
// apart — a new edge is reported as "nothing new" because its colliding
// partner was seen first. A larger map separates the keys and restores the
// signal. This is the per-edge mechanism behind the paper's campaign-level
// results.
//
//   ./build/examples/collision_demo
#include <cstdio>

#include "core/coverage_map.h"
#include "instrumentation/metrics.h"
#include "util/rng.h"

using namespace bigmap;

namespace {

// Finds two block pairs whose AFL edge keys collide at `small_size` but
// not at `large_size`.
struct CollidingPair {
  u32 a_prev, a_cur;
  u32 b_prev, b_cur;
};

CollidingPair find_colliding_edges(const BlockIdTable& ids, usize small_size,
                                   usize large_size) {
  const u32 small_mask = static_cast<u32>(small_size - 1);
  const u32 large_mask = static_cast<u32>(large_size - 1);
  for (u32 a = 0; a < ids.size(); ++a) {
    for (u32 b = a + 1; b < ids.size(); ++b) {
      const u32 ka = (ids.id(a) >> 1) ^ ids.id(a + 1 < ids.size() ? a + 1 : 0);
      const u32 kb = (ids.id(b) >> 1) ^ ids.id(b + 1 < ids.size() ? b + 1 : 0);
      if ((ka & small_mask) == (kb & small_mask) &&
          (ka & large_mask) != (kb & large_mask)) {
        return {a, a + 1 < static_cast<u32>(ids.size()) ? a + 1 : 0, b,
                b + 1 < static_cast<u32>(ids.size()) ? b + 1 : 0};
      }
    }
  }
  return {0, 1, 2, 3};
}

NewBits feed_edge(CoverageMapVariant& map, VirginMap& virgin,
                  const BlockIdTable& ids, u32 prev, u32 cur) {
  map.reset();
  EdgeMetric metric(ids);
  metric.begin_execution();
  metric.visit(prev);
  map.update(metric.visit(cur));
  return map.classify_and_compare(virgin);
}

}  // namespace

int main() {
  constexpr usize kSmall = 1u << 10;  // deliberately tiny to force collision
  constexpr usize kLarge = 1u << 20;

  BlockIdTable ids(4096, kLarge, /*seed=*/42);
  const CollidingPair pair = find_colliding_edges(ids, kSmall, kLarge);
  std::printf("edge A: blocks %u->%u, edge B: blocks %u->%u\n", pair.a_prev,
              pair.a_cur, pair.b_prev, pair.b_cur);

  for (usize size : {kSmall, kLarge}) {
    MapOptions o;
    o.map_size = size;
    CoverageMapVariant map(MapScheme::kTwoLevel, o);
    VirginMap virgin(map.virgin_size());

    const NewBits first =
        feed_edge(map, virgin, ids, pair.a_prev, pair.a_cur);
    const NewBits second =
        feed_edge(map, virgin, ids, pair.b_prev, pair.b_cur);

    std::printf(
        "\nmap %zu bytes:\n  edge A first seen  -> %s\n  edge B first seen  "
        "-> %s %s\n",
        size, first == NewBits::kNewTuple ? "NEW TUPLE (saved)" : "nothing",
        second == NewBits::kNewTuple ? "NEW TUPLE (saved)"
                                     : "nothing new (DISCARDED)",
        second == NewBits::kNewTuple
            ? ""
            : "<- collision: a genuinely new edge is invisible");
  }

  std::printf(
      "\nWith BigMap the large map costs the same as the small one, so "
      "there is no reason to accept the collision.\n");
  return 0;
}
