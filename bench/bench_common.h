// Shared plumbing for the bench harnesses.
//
// Every bench binary regenerates one table or figure of the paper and
// prints the corresponding rows/series. Campaign lengths scale with the
// BIGMAP_BENCH_SCALE environment variable (default 1.0): 0.2 gives a quick
// smoke pass, 5.0 a long high-fidelity run. Seeds-per-benchmark are capped
// so multi-megabyte-map seed phases do not dominate short runs (the paper
// amortizes them over 24 h); the cap scales with BIGMAP_BENCH_SCALE in both
// directions (floor 16, so smoke runs stay fast).
//
// Machine-readable reporting: every bench accepts `--json <path>` (or
// BIGMAP_BENCH_JSON=<path>) and then serializes each table it prints into
// one schema-stable JSON document (telemetry::BenchReport, schema_version
// 1) so CI can commit BENCH_*.json artifacts and diff perf trajectories
// across PRs. `--telemetry-dir <dir>` (or BIGMAP_TELEMETRY_DIR) makes the
// benches that run live campaigns also emit AFL-style fuzzer_stats /
// plot_data trees. Usage pattern:
//
//   int main(int argc, char** argv) {
//     bench::init(argc, argv, "fig6");
//     bench::print_header(...);
//     ...
//     bench::emit("throughput", table);   // prints AND records the table
//     return bench::finish();             // writes the JSON when requested
//   }
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/kernels/kernels.h"
#include "fuzzer/campaign.h"
#include "target/suite.h"
#include "telemetry/bench_report.h"
#include "util/report.h"

namespace bigmap::bench {

inline double scale() {
  static const double s = [] {
    const char* env = std::getenv("BIGMAP_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
  }();
  return s;
}

// Seconds a single campaign configuration is given (base x scale).
inline double config_seconds(double base) { return base * scale(); }

// Execution budget scaled.
inline u64 scaled_execs(u64 base) {
  return static_cast<u64>(static_cast<double>(base) * scale());
}

// Cap on seeds fed to a campaign, proportional to scale in both directions
// (sub-1.0 smoke scales shrink the seed phase too; floor 16 keeps every
// campaign startable).
inline u32 seed_cap() {
  const double scaled = 256.0 * scale();
  return scaled < 16.0 ? 16u : static_cast<u32>(scaled);
}

inline std::vector<Input> capped_seeds(const GeneratedTarget& target,
                                       const BenchmarkInfo& info) {
  auto seeds = benchmark_seeds(target, info);
  if (seeds.size() > seed_cap()) seeds.resize(seed_cap());
  return seeds;
}

// Standard campaign config for throughput-style benches.
inline CampaignConfig throughput_config(MapScheme scheme, usize map_size,
                                        double seconds, u64 seed = 1) {
  CampaignConfig c;
  c.scheme = scheme;
  c.map.map_size = map_size;
  c.max_execs = 0;
  c.max_seconds = seconds;
  c.seed = seed;
  return c;
}

// --- machine-readable reporting ---------------------------------------------

struct ReportState {
  std::string bench_name;
  std::string json_path;      // empty = console only
  std::string telemetry_dir;  // empty = no fuzzer_stats/plot_data trees
  std::unique_ptr<telemetry::BenchReport> report;
};

inline ReportState& report_state() {
  static ReportState s;
  return s;
}

// Parses --json <path> / --telemetry-dir <dir> (falling back to the
// BIGMAP_BENCH_JSON / BIGMAP_TELEMETRY_DIR environment variables) and
// prepares the report. Call first in main(); unknown arguments are
// rejected so CI typos fail loudly.
inline void init(int argc, char** argv, const char* bench_name) {
  ReportState& s = report_state();
  s.bench_name = bench_name;
  if (const char* env = std::getenv("BIGMAP_BENCH_JSON")) s.json_path = env;
  if (const char* env = std::getenv("BIGMAP_TELEMETRY_DIR")) {
    s.telemetry_dir = env;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      s.json_path = argv[++i];
    } else if (arg == "--telemetry-dir" && i + 1 < argc) {
      s.telemetry_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json <path>] [--telemetry-dir <dir>]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  s.report =
      std::make_unique<telemetry::BenchReport>(s.bench_name, scale());
  // Which whole-map kernel this process dispatches to (BIGMAP_KERNEL /
  // best available) — recorded so BENCH_*.json perf trajectories are
  // attributable to the kernel that produced them.
  s.report->set_meta("kernel", std::string(kernels::active_kernel().name));
}

inline telemetry::BenchReport& report() {
  ReportState& s = report_state();
  if (s.report == nullptr) {
    // Bench forgot bench::init (or a test calls emit directly): still
    // record, with defaults.
    s.report = std::make_unique<telemetry::BenchReport>("unnamed", scale());
    s.report->set_meta("kernel",
                       std::string(kernels::active_kernel().name));
  }
  return *s.report;
}

inline const std::string& telemetry_dir() {
  return report_state().telemetry_dir;
}

// Prints `table` to stdout and records it into the JSON report.
inline void emit(const std::string& table_name, const TableWriter& table) {
  table.print(std::cout);
  report().add_table(table_name, table);
}

// Writes the JSON report when --json/BIGMAP_BENCH_JSON was given. Returns
// the process exit code (1 on write failure).
inline int finish() {
  ReportState& s = report_state();
  if (s.json_path.empty()) return 0;
  if (!report().write_file(s.json_path)) {
    std::fprintf(stderr, "failed to write JSON report to %s\n",
                 s.json_path.c_str());
    return 1;
  }
  std::printf("\nJSON report written to %s\n", s.json_path.c_str());
  return 0;
}

inline void print_header(const char* experiment, const char* claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper claim: %s\n", claim);
  std::printf("Scale: %.2f (set BIGMAP_BENCH_SCALE to adjust)\n", scale());
  std::printf("================================================================\n\n");
  report().set_meta("experiment", std::string(experiment));
  report().set_meta("claim", std::string(claim));
}

}  // namespace bigmap::bench
