// Shared plumbing for the bench harnesses.
//
// Every bench binary regenerates one table or figure of the paper and
// prints the corresponding rows/series. Campaign lengths scale with the
// BIGMAP_BENCH_SCALE environment variable (default 1.0): 0.2 gives a quick
// smoke pass, 5.0 a long high-fidelity run. Seeds-per-benchmark are capped
// so multi-megabyte-map seed phases do not dominate short runs (the paper
// amortizes them over 24 h); the cap is lifted proportionally with scale.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fuzzer/campaign.h"
#include "target/suite.h"
#include "util/report.h"

namespace bigmap::bench {

inline double scale() {
  static const double s = [] {
    const char* env = std::getenv("BIGMAP_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
  }();
  return s;
}

// Seconds a single campaign configuration is given (base x scale).
inline double config_seconds(double base) { return base * scale(); }

// Execution budget scaled.
inline u64 scaled_execs(u64 base) {
  return static_cast<u64>(static_cast<double>(base) * scale());
}

// Cap on seeds fed to a campaign.
inline u32 seed_cap() {
  return static_cast<u32>(256 * (scale() < 1.0 ? 1.0 : scale()));
}

inline std::vector<Input> capped_seeds(const GeneratedTarget& target,
                                       const BenchmarkInfo& info) {
  auto seeds = benchmark_seeds(target, info);
  if (seeds.size() > seed_cap()) seeds.resize(seed_cap());
  return seeds;
}

// Standard campaign config for throughput-style benches.
inline CampaignConfig throughput_config(MapScheme scheme, usize map_size,
                                        double seconds, u64 seed = 1) {
  CampaignConfig c;
  c.scheme = scheme;
  c.map.map_size = map_size;
  c.max_execs = 0;
  c.max_seconds = seconds;
  c.seed = seed;
  return c;
}

inline void print_header(const char* experiment, const char* claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper claim: %s\n", claim);
  std::printf("Scale: %.2f (set BIGMAP_BENCH_SCALE to adjust)\n", scale());
  std::printf("================================================================\n\n");
}

}  // namespace bigmap::bench
