// Ablation over the N-gram window size: map pressure (distinct keys) and
// collision rate at 64 kB as N grows from plain edge coverage to
// N-gram(8). Context for §V-C: expressive metrics multiply the key
// population, which is what makes large maps — and therefore BigMap —
// necessary.
#include <cstdio>
#include <iostream>

#include "analysis/collision.h"
#include "bench_common.h"

using namespace bigmap;

int main(int argc, char** argv) {
  bench::init(argc, argv, "ablation_ngram");
  bench::print_header(
      "Metric ablation — map pressure of edge vs. N-gram{2,3,4,8} vs. "
      "context coverage",
      "N-gram and context metrics exert multiples of edge coverage's map "
      "pressure (paper §VI: up to 8x for context coverage)");

  const BenchmarkInfo* info = find_benchmark("sqlite3");
  auto target = build_benchmark(*info);
  auto seeds = bench::capped_seeds(target, *info);

  TableWriter table({"Metric", "Distinct keys", "vs edge", "Coll%@64k",
                     "Exec/s"});
  u64 edge_keys = 0;

  const MetricKind metrics[] = {MetricKind::kEdge,   MetricKind::kNGram2,
                                MetricKind::kNGram,  MetricKind::kNGram4,
                                MetricKind::kNGram8, MetricKind::kContext};
  for (MetricKind m : metrics) {
    CampaignConfig c;
    c.scheme = MapScheme::kTwoLevel;  // large map: pressure measured cleanly
    c.map.map_size = 8u << 20;
    c.metric = m;
    c.max_execs = bench::scaled_execs(15000);
    c.max_seconds = bench::config_seconds(6.0);
    c.seed = 4;
    auto r = run_campaign(target.program, seeds, c);
    if (m == MetricKind::kEdge) edge_keys = r.used_key;

    table.add_row(
        {metric_name(m), fmt_count(r.used_key),
         fmt_double(edge_keys > 0 ? static_cast<double>(r.used_key) /
                                        static_cast<double>(edge_keys)
                                  : 0,
                    2) +
             "x",
         fmt_double(collision_rate(65536.0, r.used_key) * 100, 1) + "%",
         fmt_double(r.steady_throughput(), 0)});
  }
  bench::emit("map_pressure", table);
  std::printf(
      "\nBigMap's costs track the distinct-key count, not the map size — "
      "so even the 8-gram's key population runs at full speed on an 8MB "
      "map.\n");
  return bench::finish();
}
