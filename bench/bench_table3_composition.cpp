// Table III: coverage-metric composition — laf-intel + N-gram(3) on the 12
// LLVM harnesses, 64kB vs. 2MB maps, BOTH running BigMap (the experiment
// isolates collision mitigation, not data-structure speed).
//
// The paper: collision rate drops from ~79% to ~7.5%, edge coverage stays
// flat, unique crashes improve by 33% on average.
#include <cstdio>
#include <iostream>

#include "analysis/collision.h"
#include "bench_common.h"
#include "target/lafintel.h"

using namespace bigmap;

int main(int argc, char** argv) {
  bench::init(argc, argv, "table3");
  bench::print_header(
      "Table III — laf-intel + N-gram composition, 64kB vs 2MB (both "
      "BigMap)",
      "collision mitigation with a 2MB map uncovers ~33% more unique "
      "crashes; edge coverage is unaffected");

  TableWriter table({"Benchmark", "Coll%64k", "Coll%2M", "Keys 64k",
                     "Keys 2M", "Crash 64k", "Crash 2M"});

  double sum_crash_64k = 0, sum_crash_2m = 0;
  double sum_keys_64k = 0, sum_keys_2m = 0;
  int rows = 0;

  for (const BenchmarkInfo& info : composition_suite()) {
    auto target = build_benchmark(info);

    // Apply the laf-intel pass — the composition's first ingredient.
    LafIntelStats laf;
    Program program = apply_laf_intel(target.program, &laf);
    auto seeds = bench::capped_seeds(target, info);

    u64 crashes[2] = {0, 0};
    u64 keys[2] = {0, 0};
    const usize sizes[2] = {64u << 10, 2u << 20};
    for (int i = 0; i < 2; ++i) {
      CampaignConfig c = bench::throughput_config(
          MapScheme::kTwoLevel, sizes[i], bench::config_seconds(6.0),
          /*seed=*/9);
      c.metric = MetricKind::kNGram;  // the composition's second ingredient
      auto r = run_campaign(program, seeds, c);
      crashes[i] = r.crashes_crashwalk_unique;
      keys[i] = r.used_key;  // distinct coverage keys observed
    }

    // Collision pressure from the distinct-key count at each map size.
    // (Distinct keys at 2MB approximate the true key population.)
    const double coll64 =
        collision_rate(65536.0, static_cast<double>(keys[1])) * 100.0;
    const double coll2m =
        collision_rate(2.0 * 1024 * 1024, static_cast<double>(keys[1])) *
        100.0;

    table.add_row({info.name, fmt_double(coll64, 1), fmt_double(coll2m, 1),
                   fmt_count(keys[0]), fmt_count(keys[1]),
                   fmt_count(crashes[0]), fmt_count(crashes[1])});
    sum_crash_64k += static_cast<double>(crashes[0]);
    sum_crash_2m += static_cast<double>(crashes[1]);
    sum_keys_64k += static_cast<double>(keys[0]);
    sum_keys_2m += static_cast<double>(keys[1]);
    ++rows;
  }
  bench::emit("composition", table);

  if (rows > 0 && sum_crash_64k > 0) {
    std::printf(
        "\nAVERAGE: keys 64k=%.0f 2M=%.0f | crashes 64k=%.1f 2M=%.1f "
        "(+%.0f%%; paper: +33%%)\n",
        sum_keys_64k / rows, sum_keys_2m / rows, sum_crash_64k / rows,
        sum_crash_2m / rows,
        100.0 * (sum_crash_2m - sum_crash_64k) / sum_crash_64k);
  }
  return bench::finish();
}
