// §IV-E ablation: huge pages and DTLB pressure.
//
// Reproduces the rationale for allocating the bitmaps on huge pages: a
// large flat map spans thousands of 4 KiB pages and thrashes the DTLB
// during scans and scattered updates; 2 MiB pages cover the same map with
// a handful of entries. BigMap's condensed region barely pressures the
// TLB either way.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "cachesim/tlb.h"

using namespace bigmap;

int main(int argc, char** argv) {
  bench::init(argc, argv, "ablation_tlb");
  bench::print_header(
      "§IV-E ablation — DTLB pressure and huge pages (modeled 64/512-entry "
      "DTLB)",
      "large maps on 4kB pages cause frequent page walks; 2MB pages (and "
      "BigMap's small used region) remove them");

  const u32 execs = static_cast<u32>(6 * bench::scale()) < 2
                        ? 2
                        : static_cast<u32>(6 * bench::scale());

  TableWriter table({"Scheme", "Map", "Page size", "Walks/exec",
                     "Walk rate"});
  for (bool two_level : {false, true}) {
    for (usize map_size : {64u << 10, 2u << 20, 8u << 20}) {
      for (usize page : {4096u, 2u << 20}) {
        auto r = simulate_map_tlb_pressure(two_level, map_size,
                                           /*used_keys=*/20000,
                                           /*edges_per_exec=*/4000, page,
                                           execs, /*seed=*/5);
        table.add_row({two_level ? "BigMap" : "AFL", fmt_bytes(map_size),
                       page == 4096 ? "4k" : "2M",
                       fmt_count(r.walks_per_exec),
                       fmt_double(r.walk_rate * 100, 2) + "%"});
      }
    }
  }
  bench::emit("tlb_pressure", table);
  std::printf(
      "\nShape check: AFL @8M on 4k pages should show thousands of walks "
      "per execution, collapsing to ~zero on 2M pages; BigMap should be "
      "near-zero in all configurations.\n");
  return bench::finish();
}
