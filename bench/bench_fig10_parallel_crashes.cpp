// Figure 10: unique crashes found with a varying number of fuzzing
// instances at a fixed 2MB map.
//
// Virtual-time protocol (single-core host; see DESIGN.md): the SMP cache
// model supplies each scheme's per-instance throughput at n instances;
// each instance then really executes throughput x T_virtual test cases,
// sharing a corpus-sync hub. Instances run sequentially (deterministic),
// importing everything earlier instances published — the master-secondary
// sync of §V-D. Crashes are unioned across instances by Crashwalk hash
// and by ground-truth bug id.
// Set BIGMAP_REAL_THREADS=1 to additionally run the campaign on real
// std::threads under the fault-tolerant supervisor (shared SyncHub, crash
// union across instances) instead of the sequential virtual-time protocol.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <unordered_set>

#include "bench_common.h"
#include "cachesim/smp.h"
#include "fuzzer/supervisor.h"
#include "fuzzer/sync.h"

using namespace bigmap;

namespace {

bool real_threads_enabled() {
  const char* env = std::getenv("BIGMAP_REAL_THREADS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// Concurrent (wall-clock-interleaved) instances with supervision; crashes
// are unioned by the supervisor exactly as the virtual-time protocol
// unions them per scheme.
void run_real_thread_section() {
  std::printf("\nReal-thread supervised campaigns (measured):\n");

  const BenchmarkInfo* info = find_benchmark("licm");
  if (info == nullptr) return;
  auto target = build_benchmark(*info);
  auto seeds = bench::capped_seeds(target, *info);

  const u32 counts[] = {1, 2, 4};
  TableWriter table({"Instances", "AFL crashes", "BigMap crashes",
                     "AFL execs", "BigMap execs", "restarts"});
  for (u32 n : counts) {
    u64 crashes[2] = {0, 0};
    u64 execs[2] = {0, 0};
    u64 restarts = 0;
    for (MapScheme scheme : {MapScheme::kFlat, MapScheme::kTwoLevel}) {
      const int i = scheme == MapScheme::kTwoLevel;
      SupervisorConfig sc;
      sc.num_instances = n;
      sc.base.scheme = scheme;
      sc.base.map.map_size = 2u << 20;
      sc.base.max_execs = bench::scaled_execs(6000);
      sc.base.seed = 0xF16'0A;
      auto r = run_supervised_campaign(target.program, seeds, sc);
      crashes[i] = r.found_stack_hashes.size();
      execs[i] = r.total_execs;
      restarts += r.total_restarts;
    }
    table.add_row({std::to_string(n), fmt_count(crashes[0]),
                   fmt_count(crashes[1]), fmt_count(execs[0]),
                   fmt_count(execs[1]), std::to_string(restarts)});
  }
  bench::emit("real_thread_crashes", table);
  std::printf(
      "Note: concurrent instances share one SyncHub and a per-instance "
      "exec budget; on a single-core host the schemes' wall-clock gap "
      "does not show, so compare crash unions, not runtimes.\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv, "fig10");
  bench::print_header(
      "Figure 10 — Unique crashes vs. number of instances (2MB map)",
      "AFL's crash yield suffers from its throughput collapse; BigMap "
      "finds 20%/36%/49% more crashes at 4/8/12 instances");

  const u32 counts[] = {1, 4, 8, 12};
  const char* names[] = {"licm", "gvn", "instcombine"};

  // Virtual seconds of fuzzing per instance (scaled).
  const double virtual_seconds = 2.0 * bench::scale();

  TableWriter table({"Benchmark", "Instances", "AFL crashes",
                     "BigMap crashes", "AFL execs", "BigMap execs"});
  u64 totals[2][4] = {};

  for (const char* name : names) {
    const BenchmarkInfo* info = find_benchmark(name);
    if (info == nullptr) continue;
    auto target = build_benchmark(*info);
    auto seeds = bench::capped_seeds(target, *info);

    for (int ci = 0; ci < 4; ++ci) {
      const u32 n = counts[ci];
      u64 crashes[2] = {0, 0};
      u64 execs[2] = {0, 0};

      for (MapScheme scheme : {MapScheme::kFlat, MapScheme::kTwoLevel}) {
        const int i = scheme == MapScheme::kTwoLevel;

        // Per-instance throughput under n-way contention, from the model;
        // normalized so BigMap n=1 runs ~3000 real execs per virtual
        // second (keeps runtimes bounded while preserving ratios).
        SmpParams sp;
        sp.scheme = scheme;
        sp.map_size = 2u << 20;
        sp.used_keys = 50000;
        sp.edges_per_exec = 5000;
        sp.instances = n;
        auto model_n = simulate_parallel_fuzzing(sp);
        sp.scheme = MapScheme::kTwoLevel;
        sp.instances = 1;
        auto model_ref = simulate_parallel_fuzzing(sp);
        const double execs_per_vsec = 3000.0 * model_n.instance_throughput /
                                      model_ref.instance_throughput;
        const u64 budget = static_cast<u64>(
            std::max(50.0, execs_per_vsec * virtual_seconds));

        SyncHub hub(n);
        std::unordered_set<u64> stack_union;
        std::unordered_set<u32> bug_union;
        for (u32 inst = 0; inst < n; ++inst) {
          CampaignConfig c;
          c.scheme = scheme;
          c.map.map_size = 2u << 20;
          c.max_execs = budget;
          c.seed = 0xF16'0A + inst;
          c.sync = &hub;
          c.sync_id = inst;
          c.is_master = (inst == 0);
          auto r = run_campaign(target.program, seeds, c);
          execs[i] += r.execs;
          for (u64 h : r.found_stack_hashes) stack_union.insert(h);
          for (u32 b : r.found_bug_ids) bug_union.insert(b);
        }
        crashes[i] = stack_union.size();
        totals[i][ci] += crashes[i];
      }

      table.add_row({info->name, std::to_string(n), fmt_count(crashes[0]),
                     fmt_count(crashes[1]), fmt_count(execs[0]),
                     fmt_count(execs[1])});
    }
  }
  bench::emit("unique_crashes", table);

  std::printf("\nTotals (Crashwalk-unique, unioned across instances):\n");
  TableWriter tot({"Instances", "AFL", "BigMap", "BigMap advantage"});
  for (int ci = 0; ci < 4; ++ci) {
    const double adv =
        totals[0][ci] > 0
            ? 100.0 *
                  (static_cast<double>(totals[1][ci]) - totals[0][ci]) /
                  totals[0][ci]
            : 0.0;
    tot.add_row({std::to_string(counts[ci]), fmt_count(totals[0][ci]),
                 fmt_count(totals[1][ci]), fmt_double(adv, 0) + "%"});
  }
  bench::emit("totals", tot);
  std::printf("\nPaper: +20%% / +36%% / +49%% more crashes at 4/8/12 "
              "instances.\n");

  if (real_threads_enabled()) {
    run_real_thread_section();
  } else {
    std::printf(
        "\nSet BIGMAP_REAL_THREADS=1 for measured real-thread supervised "
        "campaigns alongside the virtual-time protocol.\n");
  }
  return bench::finish();
}
