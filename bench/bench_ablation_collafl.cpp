// §VI comparison: CollAFL vs. BigMap as collision-mitigation strategies.
//
// CollAFL assigns collision-free edge IDs statically, but (a) must size
// the bitmap to hold ALL static edges even though "only a fraction of the
// static edges are visited during a fuzzing campaign" (the paper cites its
// own Table II as evidence), and (b) is tied to edge coverage. This bench
// quantifies both points on three benchmark scales.
#include <cstdio>
#include <iostream>

#include "analysis/collafl.h"
#include "analysis/collision.h"
#include "bench_common.h"

using namespace bigmap;

int main(int argc, char** argv) {
  bench::init(argc, argv, "ablation_collafl");
  bench::print_header(
      "§VI ablation — CollAFL static assignment vs. BigMap",
      "CollAFL eliminates collisions but must size the map to the static "
      "edge count; only a fraction is ever visited, which BigMap exploits");

  TableWriter table({"Benchmark", "Static edges", "CollAFL map",
                     "Visited keys", "Visited/static", "AFL coll@64k",
                     "CollAFL coll", "BigMap used"});

  for (const char* name : {"libpng", "sqlite3", "instcombine"}) {
    const BenchmarkInfo* info = find_benchmark(name);
    if (info == nullptr) continue;
    auto target = build_benchmark(*info);
    auto seeds = bench::capped_seeds(target, *info);

    // CollAFL sizing requirement.
    const usize required = CollAflAssignment::required_map_size(
        target.program);
    CollAflAssignment assignment(target.program, required);

    // What a campaign actually visits (BigMap's used_key).
    CampaignConfig c;
    c.scheme = MapScheme::kTwoLevel;
    c.map.map_size = 2u << 20;
    c.max_execs = bench::scaled_execs(20000);
    c.max_seconds = bench::config_seconds(5.0);
    c.seed = 3;
    auto r = run_campaign(target.program, seeds, c);

    const double visited_frac =
        static_cast<double>(r.used_key) /
        static_cast<double>(assignment.num_static_edges());

    table.add_row(
        {info->name, fmt_count(assignment.num_static_edges()),
         fmt_bytes(required), fmt_count(r.used_key),
         fmt_double(visited_frac * 100, 1) + "%",
         fmt_double(collision_rate(65536.0, r.used_key) * 100, 2) + "%",
         assignment.hashed_fallback() == 0 ? "0%" : ">0%",
         fmt_count(r.used_key)});
  }
  bench::emit("collafl_vs_bigmap", table);

  std::printf(
      "\nReading: CollAFL needs a map sized to the static edges (last LLVM "
      "row: ~1M slots) although the campaign visits only a few percent of "
      "them. BigMap reaches zero collisions with any sufficiently large "
      "map while its per-test-case costs track the visited keys only — "
      "and it composes with N-gram/context metrics, which CollAFL's "
      "static edge assignment cannot host.\n");
  return bench::finish();
}
