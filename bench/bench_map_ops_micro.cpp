// Microbenchmarks (google-benchmark) of the individual map operations —
// the per-operation costs behind Listing 1 vs. Listing 2 and Figure 3.
//
// Naming: <Op>/<scheme>/<map_size>. The update benchmarks measure the
// per-edge cost (AFL: one access; BigMap: predictable branch + two
// accesses); the scan benchmarks show flat cost growing with map size
// while two-level cost tracks the used-key count.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/flat_map.h"
#include "core/two_level_map.h"
#include "core/virgin.h"
#include "util/rng.h"

namespace bigmap {
namespace {

MapOptions opts(usize size) {
  MapOptions o;
  o.map_size = size;
  o.huge_pages = true;
  return o;
}

std::vector<u32> make_keys(usize count, usize map_size, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<u32> keys(count);
  for (auto& k : keys) {
    k = static_cast<u32>(rng.next()) & static_cast<u32>(map_size - 1);
  }
  return keys;
}

void BM_UpdateFlat(benchmark::State& state) {
  const usize map_size = static_cast<usize>(state.range(0));
  FlatCoverageMap map(opts(map_size));
  auto keys = make_keys(4096, map_size, 1);
  for (auto _ : state) {
    for (u32 k : keys) map.update(k);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<i64>(keys.size()));
}
BENCHMARK(BM_UpdateFlat)->Arg(1 << 16)->Arg(2 << 20)->Arg(8 << 20);

void BM_UpdateTwoLevel(benchmark::State& state) {
  const usize map_size = static_cast<usize>(state.range(0));
  TwoLevelCoverageMap map(opts(map_size));
  auto keys = make_keys(4096, map_size, 1);
  for (auto _ : state) {
    for (u32 k : keys) map.update(k);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<i64>(keys.size()));
}
BENCHMARK(BM_UpdateTwoLevel)->Arg(1 << 16)->Arg(2 << 20)->Arg(8 << 20);

template <class Map>
void scan_bench(benchmark::State& state, usize used_keys,
                void (*op)(Map&, VirginMap&)) {
  const usize map_size = static_cast<usize>(state.range(0));
  Map map(opts(map_size));
  VirginMap virgin(Map::kScheme == MapScheme::kTwoLevel ? map_size
                                                        : map_size);
  auto keys = make_keys(used_keys, map_size, 2);
  for (u32 k : keys) map.update(k);
  for (auto _ : state) {
    op(map, virgin);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<i64>(map.scan_cost_bytes()));
}

void BM_ResetFlat(benchmark::State& state) {
  scan_bench<FlatCoverageMap>(state, 20000,
                              [](FlatCoverageMap& m, VirginMap&) {
                                m.reset();
                              });
}
BENCHMARK(BM_ResetFlat)->Arg(1 << 16)->Arg(2 << 20)->Arg(8 << 20);

void BM_ResetTwoLevel(benchmark::State& state) {
  scan_bench<TwoLevelCoverageMap>(state, 20000,
                                  [](TwoLevelCoverageMap& m, VirginMap&) {
                                    m.reset();
                                  });
}
BENCHMARK(BM_ResetTwoLevel)->Arg(1 << 16)->Arg(2 << 20)->Arg(8 << 20);

void BM_ClassifyCompareFlat(benchmark::State& state) {
  scan_bench<FlatCoverageMap>(state, 20000,
                              [](FlatCoverageMap& m, VirginMap& v) {
                                m.classify_and_compare(v);
                              });
}
BENCHMARK(BM_ClassifyCompareFlat)->Arg(1 << 16)->Arg(2 << 20)->Arg(8 << 20);

void BM_ClassifyCompareTwoLevel(benchmark::State& state) {
  scan_bench<TwoLevelCoverageMap>(
      state, 20000, [](TwoLevelCoverageMap& m, VirginMap& v) {
        m.classify_and_compare(v);
      });
}
BENCHMARK(BM_ClassifyCompareTwoLevel)
    ->Arg(1 << 16)
    ->Arg(2 << 20)
    ->Arg(8 << 20);

void BM_HashFlat(benchmark::State& state) {
  scan_bench<FlatCoverageMap>(state, 20000,
                              [](FlatCoverageMap& m, VirginMap&) {
                                benchmark::DoNotOptimize(m.hash());
                              });
}
BENCHMARK(BM_HashFlat)->Arg(1 << 16)->Arg(2 << 20)->Arg(8 << 20);

void BM_HashTwoLevel(benchmark::State& state) {
  scan_bench<TwoLevelCoverageMap>(state, 20000,
                                  [](TwoLevelCoverageMap& m, VirginMap&) {
                                    benchmark::DoNotOptimize(m.hash());
                                  });
}
BENCHMARK(BM_HashTwoLevel)->Arg(1 << 16)->Arg(2 << 20)->Arg(8 << 20);

}  // namespace
}  // namespace bigmap

// Custom main instead of BENCHMARK_MAIN(): translates the repo-wide
// `--json <path>` / BIGMAP_BENCH_JSON convention into google-benchmark's
// own JSON reporter flags, so CI collects BENCH_micro.json with the same
// one switch it uses for the table benches. All other arguments pass
// through to the benchmark library untouched.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string fmt_flag = "--benchmark_out_format=json";
  const char* json_path = std::getenv("BIGMAP_BENCH_JSON");
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[i + 1];
      args.erase(args.begin() + i, args.begin() + i + 2);
      break;
    }
  }
  if (json_path != nullptr) {
    out_flag = std::string("--benchmark_out=") + json_path;
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
