// Microbenchmarks (google-benchmark) of the individual map operations —
// the per-operation costs behind Listing 1 vs. Listing 2 and Figure 3.
//
// Naming: <Op>/<scheme>/<map_size>. The update benchmarks measure the
// per-edge cost (AFL: one access; BigMap: predictable branch + two
// accesses); the scan benchmarks show flat cost growing with map size
// while two-level cost tracks the used-key count. The map-level scan
// benchmarks dispatch through the process-default kernel (BIGMAP_KERNEL).
//
// Per-kernel families (BM_Kernel<Op>/<kernel>/<len>) are registered at
// startup for every kernel this CPU supports and operate on raw buffers
// of `len` bytes — `len` is exactly BigMap's used region, so the scalar
// vs. vector gap on a 2 MB used region is measured directly, not
// asserted. BM_KernelCompareUpdate is a pure steady-state scan;
// BM_KernelClassify / BM_KernelClassifyCompare restore the trace from a
// pristine copy each iteration (classification is not idempotent), so
// those numbers include one 2 MB memcpy per iteration for every kernel
// alike.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/flat_map.h"
#include "core/kernels/kernels.h"
#include "core/two_level_map.h"
#include "core/virgin.h"
#include "util/rng.h"

namespace bigmap {
namespace {

MapOptions opts(usize size) {
  MapOptions o;
  o.map_size = size;
  o.huge_pages = true;
  return o;
}

std::vector<u32> make_keys(usize count, usize map_size, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<u32> keys(count);
  for (auto& k : keys) {
    k = static_cast<u32>(rng.next()) & static_cast<u32>(map_size - 1);
  }
  return keys;
}

void BM_UpdateFlat(benchmark::State& state) {
  const usize map_size = static_cast<usize>(state.range(0));
  FlatCoverageMap map(opts(map_size));
  auto keys = make_keys(4096, map_size, 1);
  for (auto _ : state) {
    for (u32 k : keys) map.update(k);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<i64>(keys.size()));
}
BENCHMARK(BM_UpdateFlat)->Arg(1 << 16)->Arg(2 << 20)->Arg(8 << 20);

void BM_UpdateTwoLevel(benchmark::State& state) {
  const usize map_size = static_cast<usize>(state.range(0));
  TwoLevelCoverageMap map(opts(map_size));
  auto keys = make_keys(4096, map_size, 1);
  for (auto _ : state) {
    for (u32 k : keys) map.update(k);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<i64>(keys.size()));
}
BENCHMARK(BM_UpdateTwoLevel)->Arg(1 << 16)->Arg(2 << 20)->Arg(8 << 20);

template <class Map>
void scan_bench(benchmark::State& state, usize used_keys,
                void (*op)(Map&, VirginMap&)) {
  const usize map_size = static_cast<usize>(state.range(0));
  Map map(opts(map_size));
  VirginMap virgin(Map::kScheme == MapScheme::kTwoLevel ? map_size
                                                        : map_size);
  auto keys = make_keys(used_keys, map_size, 2);
  for (u32 k : keys) map.update(k);
  for (auto _ : state) {
    op(map, virgin);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<i64>(map.scan_cost_bytes()));
}

void BM_ResetFlat(benchmark::State& state) {
  scan_bench<FlatCoverageMap>(state, 20000,
                              [](FlatCoverageMap& m, VirginMap&) {
                                m.reset();
                              });
}
BENCHMARK(BM_ResetFlat)->Arg(1 << 16)->Arg(2 << 20)->Arg(8 << 20);

void BM_ResetTwoLevel(benchmark::State& state) {
  scan_bench<TwoLevelCoverageMap>(state, 20000,
                                  [](TwoLevelCoverageMap& m, VirginMap&) {
                                    m.reset();
                                  });
}
BENCHMARK(BM_ResetTwoLevel)->Arg(1 << 16)->Arg(2 << 20)->Arg(8 << 20);

void BM_ClassifyCompareFlat(benchmark::State& state) {
  scan_bench<FlatCoverageMap>(state, 20000,
                              [](FlatCoverageMap& m, VirginMap& v) {
                                m.classify_and_compare(v);
                              });
}
BENCHMARK(BM_ClassifyCompareFlat)->Arg(1 << 16)->Arg(2 << 20)->Arg(8 << 20);

void BM_ClassifyCompareTwoLevel(benchmark::State& state) {
  scan_bench<TwoLevelCoverageMap>(
      state, 20000, [](TwoLevelCoverageMap& m, VirginMap& v) {
        m.classify_and_compare(v);
      });
}
BENCHMARK(BM_ClassifyCompareTwoLevel)
    ->Arg(1 << 16)
    ->Arg(2 << 20)
    ->Arg(8 << 20);

void BM_HashFlat(benchmark::State& state) {
  scan_bench<FlatCoverageMap>(state, 20000,
                              [](FlatCoverageMap& m, VirginMap&) {
                                benchmark::DoNotOptimize(m.hash());
                              });
}
BENCHMARK(BM_HashFlat)->Arg(1 << 16)->Arg(2 << 20)->Arg(8 << 20);

void BM_HashTwoLevel(benchmark::State& state) {
  scan_bench<TwoLevelCoverageMap>(state, 20000,
                                  [](TwoLevelCoverageMap& m, VirginMap&) {
                                    benchmark::DoNotOptimize(m.hash());
                                  });
}
BENCHMARK(BM_HashTwoLevel)->Arg(1 << 16)->Arg(2 << 20)->Arg(8 << 20);

// --- per-kernel raw-buffer families --------------------------------------

// A realistic used region: ~2% of positions hold a random raw hit count
// (sparse bitmaps are the steady state; the zero-skip fast paths matter).
std::vector<u8> make_trace(usize len, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<u8> t(len, 0);
  const usize hits = len / 50;
  for (usize i = 0; i < hits; ++i) {
    t[rng.below(static_cast<u32>(len))] =
        static_cast<u8>(1 + (rng.next() % 255));
  }
  return t;
}

void register_kernel_benches() {
  using kernels::KernelOps;
  static const std::vector<i64> kLens = {1 << 16, 2 << 20};

  for (const KernelOps* k : kernels::runtime_kernels()) {
    const std::string suffix = std::string("/") + k->name;

    benchmark::RegisterBenchmark(
        ("BM_KernelReset" + suffix).c_str(),
        [k](benchmark::State& state) {
          const usize len = static_cast<usize>(state.range(0));
          std::vector<u8> buf(len, 1);
          for (auto _ : state) {
            k->reset(buf.data(), len);
            benchmark::ClobberMemory();
          }
          state.SetBytesProcessed(state.iterations() *
                                  static_cast<i64>(len));
        })
        ->Args({kLens[0]})
        ->Args({kLens[1]});

    benchmark::RegisterBenchmark(
        ("BM_KernelClassify" + suffix).c_str(),
        [k](benchmark::State& state) {
          const usize len = static_cast<usize>(state.range(0));
          const std::vector<u8> pristine = make_trace(len, 11);
          std::vector<u8> trace(len);
          for (auto _ : state) {
            std::memcpy(trace.data(), pristine.data(), len);
            k->classify(trace.data(), len);
            benchmark::ClobberMemory();
          }
          state.SetBytesProcessed(state.iterations() *
                                  static_cast<i64>(len));
        })
        ->Args({kLens[0]})
        ->Args({kLens[1]});

    benchmark::RegisterBenchmark(
        ("BM_KernelCompareUpdate" + suffix).c_str(),
        [k](benchmark::State& state) {
          const usize len = static_cast<usize>(state.range(0));
          std::vector<u8> trace = make_trace(len, 12);
          k->classify(trace.data(), len);
          std::vector<u8> virgin(len, 0xFF);
          // Steady state: first compare consumes the new bits; the timed
          // iterations scan a stable virgin map, like a fuzzer that finds
          // nothing new.
          k->compare_update(trace.data(), virgin.data(), len);
          for (auto _ : state) {
            benchmark::DoNotOptimize(
                k->compare_update(trace.data(), virgin.data(), len));
            benchmark::ClobberMemory();
          }
          state.SetBytesProcessed(state.iterations() *
                                  static_cast<i64>(len));
        })
        ->Args({kLens[0]})
        ->Args({kLens[1]});

    benchmark::RegisterBenchmark(
        ("BM_KernelClassifyCompare" + suffix).c_str(),
        [k](benchmark::State& state) {
          const usize len = static_cast<usize>(state.range(0));
          const std::vector<u8> pristine = make_trace(len, 13);
          std::vector<u8> trace(len);
          std::vector<u8> virgin(len, 0xFF);
          std::memcpy(trace.data(), pristine.data(), len);
          k->classify_compare(trace.data(), virgin.data(), len);
          for (auto _ : state) {
            std::memcpy(trace.data(), pristine.data(), len);
            benchmark::DoNotOptimize(
                k->classify_compare(trace.data(), virgin.data(), len));
            benchmark::ClobberMemory();
          }
          state.SetBytesProcessed(state.iterations() *
                                  static_cast<i64>(len));
        })
        ->Args({kLens[0]})
        ->Args({kLens[1]});

    benchmark::RegisterBenchmark(
        ("BM_KernelHash" + suffix).c_str(),
        [k](benchmark::State& state) {
          const usize len = static_cast<usize>(state.range(0));
          const std::vector<u8> trace = make_trace(len, 14);
          for (auto _ : state) {
            benchmark::DoNotOptimize(k->hash(trace.data(), len));
          }
          state.SetBytesProcessed(state.iterations() *
                                  static_cast<i64>(len));
        })
        ->Args({kLens[0]})
        ->Args({kLens[1]});

    benchmark::RegisterBenchmark(
        ("BM_KernelCountNonzero" + suffix).c_str(),
        [k](benchmark::State& state) {
          const usize len = static_cast<usize>(state.range(0));
          const std::vector<u8> trace = make_trace(len, 15);
          for (auto _ : state) {
            benchmark::DoNotOptimize(k->count_ne(trace.data(), len, 0));
          }
          state.SetBytesProcessed(state.iterations() *
                                  static_cast<i64>(len));
        })
        ->Args({kLens[0]})
        ->Args({kLens[1]});
  }
}

}  // namespace
}  // namespace bigmap

// Custom main instead of BENCHMARK_MAIN(): translates the repo-wide
// `--json <path>` / BIGMAP_BENCH_JSON convention into google-benchmark's
// own JSON reporter flags, so CI collects BENCH_micro.json with the same
// one switch it uses for the table benches. All other arguments pass
// through to the benchmark library untouched.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string fmt_flag = "--benchmark_out_format=json";
  const char* json_path = std::getenv("BIGMAP_BENCH_JSON");
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[i + 1];
      args.erase(args.begin() + i, args.begin() + i + 2);
      break;
    }
  }
  if (json_path != nullptr) {
    out_flag = std::string("--benchmark_out=") + json_path;
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  bigmap::register_kernel_benches();
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
