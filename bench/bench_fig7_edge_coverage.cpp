// Figure 7: edge coverage with varying map sizes under a fixed wall-clock
// budget. AFL's coverage suffers at big maps purely because its throughput
// collapses; BigMap's stays flat. Edge coverage is measured bias-free by
// replaying the final corpus through the ground-truth edge counter (the
// paper's "independent coverage build").
#include <cstdio>
#include <iostream>

#include "bench_common.h"

using namespace bigmap;

int main(int argc, char** argv) {
  bench::init(argc, argv, "fig7");
  bench::print_header(
      "Figure 7 — Edge coverage vs. map size (fixed time budget)",
      "AFL's edge coverage degrades on big maps (throughput loss); BigMap "
      "is insensitive to map size");

  // The paper plots a representative subset "to improve clarity".
  const char* names[] = {"libpng",  "proj4", "openssl",
                         "sqlite3", "gvn",   "instcombine"};
  const usize sizes[] = {64u << 10, 256u << 10, 2u << 20, 8u << 20};

  TableWriter table({"Benchmark", "Map", "AFL edges", "BigMap edges",
                     "AFL execs", "BigMap execs"});

  for (const char* name : names) {
    const BenchmarkInfo* info = find_benchmark(name);
    if (info == nullptr) continue;
    auto target = build_benchmark(*info);
    auto seeds = bench::capped_seeds(target, *info);

    for (usize size : sizes) {
      u64 edges[2] = {0, 0};
      u64 execs[2] = {0, 0};
      for (MapScheme scheme : {MapScheme::kFlat, MapScheme::kTwoLevel}) {
        CampaignConfig c = bench::throughput_config(
            scheme, size, bench::config_seconds(3.0), /*seed=*/11);
        c.keep_corpus = true;
        auto r = run_campaign(target.program, seeds, c);
        const int i = scheme == MapScheme::kTwoLevel;
        edges[i] = measure_corpus_edges(target.program, r.corpus);
        execs[i] = r.execs;
      }
      table.add_row({info->name, fmt_bytes(size), fmt_count(edges[0]),
                     fmt_count(edges[1]), fmt_count(execs[0]),
                     fmt_count(execs[1])});
    }
  }
  bench::emit("edge_coverage", table);
  std::printf(
      "\nShape check: BigMap's edge column should be roughly constant per "
      "benchmark across map sizes; AFL's should fall off at 2M/8M on the "
      "bigger benchmarks.\n");
  return bench::finish();
}
