// §IV-D ablation: BigMap's hash-up-to-last-nonzero rule.
//
// Demonstrates (a) the correctness problem the rule solves — the paper's
// P1/P2/P3 example, where hashing up to used_key makes identical paths
// hash differently after unrelated used_key growth — and (b) that the
// rule's cost is negligible versus hashing the full condensed region.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/two_level_map.h"
#include "util/hash.h"
#include "util/timing.h"

using namespace bigmap;

namespace {

// A "wrong" hash that goes up to used_key, for contrast.
u32 hash_up_to_used_key(const TwoLevelCoverageMap& m) {
  return crc32(m.used_region());
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv, "ablation_hash");
  bench::print_header(
      "§IV-D ablation — hash-up-to-last-nonzero rule",
      "hashing [0, used_key) gives wrong duplicates; hashing to the last "
      "non-zero byte is stable and costs nothing");

  // ---- correctness: the paper's P1/P2/P3 example --------------------------
  MapOptions o;
  o.map_size = 1u << 16;
  o.huge_pages = false;
  TwoLevelCoverageMap m(o);

  // P1: A->B->C (two edges).
  m.update(100);
  m.update(200);
  const u32 p1_rule = m.hash();
  const u32 p1_naive = hash_up_to_used_key(m);

  // P2: A->B->C->D (grows used_key to 3).
  m.reset();
  m.update(100);
  m.update(200);
  m.update(300);

  // P3: A->B->C again.
  m.reset();
  m.update(100);
  m.update(200);
  const u32 p3_rule = m.hash();
  const u32 p3_naive = hash_up_to_used_key(m);

  std::printf("P1 vs P3 (same path, used_key grew in between):\n");
  TableWriter correctness({"Hash rule", "P1", "P3", "Verdict"});
  char buf[16];
  auto hex = [&](u32 v) {
    std::snprintf(buf, sizeof(buf), "%08x", v);
    return std::string(buf);
  };
  correctness.add_row({"naive [0,used_key)", hex(p1_naive), hex(p3_naive),
                       p1_naive == p3_naive ? "match" : "MISMATCH (bug)"});
  correctness.add_row({"last-non-zero rule", hex(p1_rule), hex(p3_rule),
                       p1_rule == p3_rule ? "match (correct)" : "MISMATCH"});
  bench::emit("hash_rule_correctness", correctness);
  std::printf("\n");

  // ---- cost: rule vs. naive on a realistically-filled map -----------------
  TwoLevelCoverageMap big(o);
  for (u32 k = 0; k < 30000; ++k) big.update(k * 2654435761u);

  const int iters = static_cast<int>(2000 * bench::scale());
  u32 sink = 0;

  u64 t0 = monotonic_ns();
  for (int i = 0; i < iters; ++i) sink = sink ^ big.hash();
  u64 t1 = monotonic_ns();
  for (int i = 0; i < iters; ++i) sink = sink ^ hash_up_to_used_key(big);
  u64 t2 = monotonic_ns();

  std::printf("hash cost on %u used keys (%d iterations):\n",
              big.used_key(), iters);
  TableWriter cost({"Hash rule", "us/hash"});
  cost.add_row({"last-non-zero rule",
                fmt_double(static_cast<double>(t1 - t0) / iters / 1000.0,
                           2)});
  cost.add_row({"naive used_key",
                fmt_double(static_cast<double>(t2 - t1) / iters / 1000.0,
                           2)});
  bench::emit("hash_rule_cost", cost);
  __asm__ volatile("" : : "r"(sink) : "memory");  // keep the loops alive
  std::printf("\n(The rule scans backward over trailing zeros once per "
              "hash — noise-level overhead.)\n");
  return bench::finish();
}
