// Figure 2: hash collision rate vs. bitmap size (Equation 1), for key
// counts from 5k to 1M, with a Monte-Carlo cross-check column.
#include <cstdio>
#include <iostream>

#include "analysis/collision.h"
#include "bench_common.h"
#include "util/report.h"

using namespace bigmap;

int main(int argc, char** argv) {
  bench::init(argc, argv, "fig2");
  bench::print_header(
      "Figure 2 — Collision rate vs. bitmap size (Equation 1)",
      "collision rate drops as the bitmap grows; 64kB maps see ~30% at 50k "
      "keys; >500k keys need multi-MB maps");

  const u64 key_counts[] = {5000,   10000,  20000,  50000,
                            100000, 200000, 500000, 1000000};

  std::vector<std::string> header{"Map size"};
  for (u64 n : key_counts) header.push_back(fmt_count(n) + " keys");
  TableWriter table(std::move(header));

  for (usize map = 64u << 10; map <= (32u << 20); map <<= 1) {
    std::vector<std::string> row{fmt_bytes(map)};
    for (u64 n : key_counts) {
      row.push_back(fmt_double(collision_rate(static_cast<double>(map),
                                              static_cast<double>(n)) *
                                   100.0,
                               2) +
                    "%");
    }
    table.add_row(std::move(row));
  }
  bench::emit("collision_rate", table);

  // Monte-Carlo validation of Equation 1 at a few grid points.
  std::printf("\nMonte-Carlo cross-check (empirical vs Equation 1):\n");
  TableWriter mc({"Map size", "Keys", "Equation 1", "Empirical"});
  for (const auto& [map, keys] :
       {std::pair<u64, u64>{64u << 10, 20000},
        {1u << 20, 100000},
        {8u << 20, 500000}}) {
    mc.add_row({fmt_bytes(map), fmt_count(keys),
                fmt_double(collision_rate(static_cast<double>(map),
                                          static_cast<double>(keys)) *
                               100,
                           3) +
                    "%",
                fmt_double(monte_carlo_collision_rate(map, keys, 42, 3) * 100,
                           3) +
                    "%"});
  }
  bench::emit("monte_carlo_check", mc);

  // §III: birthday bound cited in the paper.
  std::printf(
      "\nBirthday bound: P(collision) reaches 50%% in a 64kB map after %llu "
      "IDs (paper: ~300)\n",
      static_cast<unsigned long long>(
          keys_for_collision_probability(65536, 0.5)));
  return bench::finish();
}
