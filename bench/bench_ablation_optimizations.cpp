// §IV-E ablations: each of the three orthogonal optimizations measured in
// isolation on both schemes —
//   1. merged classify+compare (halves the scan-pair cost),
//   2. non-temporal reset (removes reset-time cache pollution, flat only),
//   3. huge-page backing (cuts DTLB pressure on multi-MB maps).
#include <cstdio>
#include <iostream>

#include "bench_common.h"

using namespace bigmap;

namespace {

double run_config(const GeneratedTarget& target,
                  const std::vector<Input>& seeds, MapScheme scheme,
                  usize map_size, bool merged, bool nt_reset, bool huge) {
  CampaignConfig c = bench::throughput_config(
      scheme, map_size, bench::config_seconds(2.5), /*seed=*/1);
  c.map.merged_classify_compare = merged;
  c.map.nontemporal_reset = nt_reset;
  c.map.huge_pages = huge;
  auto r = run_campaign(target.program, seeds, c);
  return r.steady_throughput();
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv, "ablation_optimizations");
  bench::print_header(
      "§IV-E ablations — merged classify+compare, non-temporal reset, huge "
      "pages",
      "each optimization is orthogonal to the two-level scheme and helps "
      "the flat scheme most (its ops span the full map)");

  const BenchmarkInfo* info = find_benchmark("sqlite3");
  auto target = build_benchmark(*info);
  auto seeds = bench::capped_seeds(target, *info);

  TableWriter table({"Scheme", "Map", "Baseline", "+merged", "+NT reset",
                     "+huge pages", "All on"});

  for (MapScheme scheme : {MapScheme::kFlat, MapScheme::kTwoLevel}) {
    for (usize size : {64u << 10, 2u << 20}) {
      const double base =
          run_config(target, seeds, scheme, size, false, false, false);
      const double merged =
          run_config(target, seeds, scheme, size, true, false, false);
      const double nt =
          run_config(target, seeds, scheme, size, false, true, false);
      const double huge =
          run_config(target, seeds, scheme, size, false, false, true);
      const double all =
          run_config(target, seeds, scheme, size, true, true, true);
      auto rel = [&](double v) {
        return fmt_double(base > 0 ? v / base : 0, 2) + "x";
      };
      table.add_row({map_scheme_name(scheme), fmt_bytes(size),
                     fmt_double(base, 0) + "/s", rel(merged), rel(nt),
                     rel(huge), rel(all)});
    }
  }
  bench::emit("optimizations", table);
  std::printf(
      "\nShape check: '+merged' should help the flat scheme at 2MB the "
      "most; NT reset should not hurt BigMap (its reset touches only the "
      "used region).\n");
  return bench::finish();
}
