// Table I: access patterns of the bitmap operations under both schemes —
// temporal/spatial locality and cache pollution — reproduced with the
// cache-hierarchy simulator (modeled Xeon E5645).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "cachesim/mapsim.h"

using namespace bigmap;

namespace {

// Temporal locality judged by how often an access finds its line already
// resident in a private level (L1 or L2) — loop edges re-touch their slot
// long before eviction.
const char* locality_label(const MapOpAccessStats& s) {
  const double in_private =
      s.accesses == 0
          ? 0.0
          : static_cast<double>(s.l1_hits + s.l2_hits) / s.accesses;
  return in_private > 0.6 ? "High" : "Low";
}

const char* pollution_label(double occupancy) {
  if (occupancy < 0.05) return "None";
  return occupancy < 0.35 ? "Low" : "High";
}

void report(MapScheme scheme, usize map_size) {
  CacheSimParams p;
  p.scheme = scheme;
  p.map_size = map_size;
  p.used_keys = 20000;
  p.edges_per_exec = 4000;
  p.iterations = static_cast<u32>(8 * bench::scale());
  if (p.iterations < 2) p.iterations = 2;
  p.seed = 7;
  auto rep = simulate_map_cache_behavior(p);

  std::printf("%s data structure, %s map, %zu used keys:\n",
              map_scheme_name(scheme), fmt_bytes(map_size).c_str(),
              rep.used_keys);

  TableWriter t({"Map op", "Accesses", "L1 hit%", "Mem%", "Locality",
                 "Cache pollution"});
  for (const char* op : {"update", "reset", "classify", "compare", "hash"}) {
    const auto* s = rep.find(op);
    if (s == nullptr || s->accesses == 0) continue;
    // Pollution attribution: whole-map scans leave map lines resident;
    // approximate per-op pollution by the scheme-wide L3 occupancy for
    // scan ops and "Low/None" for the sparse update op.
    const bool is_scan = std::string(op) != "update";
    const double occ = is_scan ? rep.l3_map_occupancy
                               : rep.l3_map_occupancy * 0.1;
    t.add_row({op, fmt_count(s->accesses),
               fmt_double(s->l1_hit_rate() * 100, 1),
               fmt_double(s->memory_rate() * 100, 1),
               locality_label(*s), pollution_label(occ)});
  }
  bench::emit(std::string("access_patterns_") + map_scheme_name(scheme) +
                  "_" + fmt_bytes(map_size),
              t);
  std::printf(
      "  L3 occupancy by map data: %.1f%% | app working-set miss rate: "
      "%.2f%%\n\n",
      rep.l3_map_occupancy * 100, rep.app_miss_rate * 100);
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv, "table1");
  bench::print_header(
      "Table I — Access patterns of the bitmap operations",
      "AFL: whole-map ops have low temporal locality and high cache "
      "pollution; BigMap: all ops confined to the used region, no "
      "pollution");

  for (usize size : {2u << 20, 8u << 20}) {
    report(MapScheme::kFlat, size);
    report(MapScheme::kTwoLevel, size);
  }
  return bench::finish();
}
