// Figure 3: runtime composition with varying bitmap sizes for six
// benchmarks (libpng, sqlite3, gvn, bloaty, openssl, php).
//
// The paper reports wall-clock hours for one million AFL test cases broken
// into Execution / Map Classify / Map Compare / Map Reset / Map Hash /
// Others. We run time-boxed campaigns, take the steady-state per-exec cost
// of each category, and extrapolate to 1M test cases. classify/compare are
// kept unmerged here so the two categories are separable (the §IV-E merge
// is exercised by bench_ablation_optimizations instead).
#include <cstdio>
#include <iostream>

#include "bench_common.h"

using namespace bigmap;

int main(int argc, char** argv) {
  bench::init(argc, argv, "fig3");
  bench::print_header(
      "Figure 3 — Runtime composition vs. map size (time per 1M test cases)",
      "map operations are negligible at 64kB but dominate at 8MB (AFL)");

  const char* names[] = {"libpng", "sqlite3", "gvn",
                         "bloaty", "openssl", "php"};
  const usize sizes[] = {64u << 10, 2u << 20, 8u << 20};

  TableWriter table({"Benchmark", "Map", "Exec(h)", "Classify(h)",
                     "Compare(h)", "Reset(h)", "Hash(h)", "Others(h)",
                     "Total(h)", "MapOps%"});

  for (const char* name : names) {
    const BenchmarkInfo* info = find_benchmark(name);
    if (info == nullptr) continue;
    auto target = build_benchmark(*info);
    auto seeds = bench::capped_seeds(target, *info);
    // Keep the seed phase short: this bench times steady-state havoc.
    if (seeds.size() > 64) seeds.resize(64);

    for (usize size : sizes) {
      CampaignConfig c = bench::throughput_config(
          MapScheme::kFlat, size, bench::config_seconds(3.0));
      c.map.merged_classify_compare = false;  // separable categories
      auto r = run_campaign(target.program, seeds, c);

      if (r.execs == 0) continue;
      auto hours_per_1m = [&](MapOp op) {
        const double per_exec =
            static_cast<double>(r.timing.ns(op)) /
            static_cast<double>(r.execs);  // totals include seed phase
        return per_exec * 1e6 * 1e-9 / 3600.0;
      };
      const double exec_h = hours_per_1m(MapOp::kExecution);
      const double cls_h = hours_per_1m(MapOp::kClassify);
      const double cmp_h = hours_per_1m(MapOp::kCompare);
      const double rst_h = hours_per_1m(MapOp::kReset);
      const double hsh_h = hours_per_1m(MapOp::kHash);
      const double oth_h = hours_per_1m(MapOp::kOther);
      const double total = exec_h + cls_h + cmp_h + rst_h + hsh_h + oth_h;
      const double map_pct =
          total > 0 ? 100.0 * (total - exec_h - oth_h) / total : 0;

      table.add_row({info->name, fmt_bytes(size), fmt_double(exec_h, 3),
                     fmt_double(cls_h, 3), fmt_double(cmp_h, 3),
                     fmt_double(rst_h, 3), fmt_double(hsh_h, 3),
                     fmt_double(oth_h, 3), fmt_double(total, 3),
                     fmt_double(map_pct, 1)});
    }
  }
  bench::emit("runtime_composition", table);
  std::printf(
      "\nShape check: MapOps%% should be small at 64k and dominate (>50%%) "
      "at 8M, mirroring the paper's stacked bars.\n");
  return bench::finish();
}
