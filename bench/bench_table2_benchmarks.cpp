// Table II: benchmark characteristics — seeds, discovered edges, collision
// rate at 64kB, static edges — for the 19 emulated benchmarks, paper value
// alongside the measured value of the synthetic stand-in.
//
// "Discovered edges" is measured the way the paper does: maximum edge
// coverage over a fuzzing configuration — here one BigMap 2MB campaign per
// benchmark, corpus replayed through the bias-free ground-truth counter.
#include <cstdio>
#include <iostream>

#include "analysis/collision.h"
#include "bench_common.h"

using namespace bigmap;

int main(int argc, char** argv) {
  bench::init(argc, argv, "table2");
  bench::print_header(
      "Table II — Benchmark characteristics (paper vs. this reproduction)",
      "19 benchmarks spanning ~1k-131k discoverable edges and 0.5%-57% "
      "collision rates on a 64kB map");

  TableWriter table({"Benchmark", "Seeds", "Edges(paper)", "Edges(ours)",
                     "Coll%(paper)", "Coll%(ours)", "Static(paper)",
                     "Static(ours)", "Version"});

  for (const BenchmarkInfo& info : full_table2_suite()) {
    auto target = build_benchmark(info);
    auto seeds = bench::capped_seeds(target, info);

    CampaignConfig c;
    c.scheme = MapScheme::kTwoLevel;
    c.map.map_size = 2u << 20;
    c.max_execs = bench::scaled_execs(30000);
    c.max_seconds = bench::config_seconds(6.0);
    c.seed = 3;
    c.keep_corpus = true;
    auto r = run_campaign(target.program, seeds, c);

    const u64 discovered = measure_corpus_edges(target.program, r.corpus);
    const double coll =
        collision_rate(65536.0, static_cast<double>(discovered)) * 100.0;

    table.add_row({info.name, fmt_count(info.num_seeds),
                   fmt_count(info.paper_discovered_edges),
                   fmt_count(discovered),
                   fmt_double(info.paper_collision_rate, 2),
                   fmt_double(coll, 2), fmt_count(info.paper_static_edges),
                   fmt_count(target.program.static_edge_count()),
                   info.version});
  }
  bench::emit("benchmarks", table);
  std::printf(
      "\nShape check: measured discovered/static edges should track the "
      "paper column within a small factor, and the collision-rate ordering "
      "must match (zlib lowest ... instcombine highest).\n");
  return bench::finish();
}
