// Figure 9: scalability with concurrent fuzzing instances at a fixed 2MB
// map. (a) throughput normalized to a single instance; (b) BigMap's speedup
// over AFL at equal instance counts.
//
// This host has one physical core, so the 12-core experiment is reproduced
// with the cache-contention simulator (private L1/L2 per instance, shared
// 12MB L3, bandwidth-limited DRAM — see DESIGN.md substitutions). The
// model's single-instance throughputs are calibrated per benchmark by its
// used-key count and dynamic path length.
//
// Set BIGMAP_REAL_THREADS=1 to additionally run real concurrent campaigns
// (std::thread instances under the fault-tolerant supervisor, shared
// SyncHub) and report measured aggregate throughput. On a single-core host
// this measures supervision overhead rather than scaling; on a multi-core
// host it is the paper's actual protocol.
//
// Set BIGMAP_REAL_PROCS=1 to additionally run the *process* fleet
// (fuzzer/procfleet: forked workers over shared memory) and measure the
// quarantine degradation claim: a fleet that parks one repeatedly-dying
// worker must still deliver its exact exec budget at a throughput within
// 10% of a fleet launched with N-1 workers in the first place.
//
// Set BIGMAP_NETFLEET=1 to additionally federate two coordinator processes
// over a loopback PeerLink (fuzzer/netfleet) and compare the federation's
// find-union and exec budget against one fleet of the same total width —
// the scaling story one level up, across "hosts" instead of cores.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "bench_common.h"
#include "cachesim/smp.h"
#include "fuzzer/netfleet/federate.h"
#include "fuzzer/procfleet/coordinator.h"
#include "fuzzer/supervisor.h"
#include "target/generator.h"
#include "telemetry/emit.h"

using namespace bigmap;

namespace {

bool real_threads_enabled() {
  const char* env = std::getenv("BIGMAP_REAL_THREADS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

void run_real_thread_section() {
  std::printf(
      "\n(c) Real-thread supervised campaigns (measured, not simulated):\n");

  GeneratorParams gp;
  gp.seed = 9;
  gp.live_blocks = 600;
  auto target = generate_target(gp);
  auto seeds = make_seed_corpus(target, 16, 1);

  const u32 counts[] = {1, 2, 4};
  TableWriter table(
      {"Scheme", "n=1", "n=2", "n=4", "execs/s (n=4)", "restarts"});
  // Telemetry cross-check: each instance's last plot_data row carries its
  // lifetime exec count (the sink survives restarts); their sum must equal
  // the fleet total the supervisor stamps at the end of the run.
  TableWriter check({"Scheme", "n", "sum(plot_data execs)", "fleet total",
                     "supervisor execs", "match"});
  for (MapScheme scheme : {MapScheme::kFlat, MapScheme::kTwoLevel}) {
    std::vector<std::string> row{map_scheme_name(scheme)};
    double base = 0;
    double last_agg = 0;
    u64 restarts = 0;
    for (u32 n : counts) {
      telemetry::FleetTelemetry fleet(n);
      SupervisorConfig sc;
      sc.num_instances = n;
      sc.base.scheme = scheme;
      sc.base.map.map_size = 2u << 20;
      sc.base.max_execs = 0;
      sc.base.max_seconds = bench::config_seconds(0.5);
      sc.base.seed = 0xF19;
      sc.base.telemetry_interval = 2048;
      sc.telemetry = &fleet;
      sc.fleet_stamp_ms = 50;
      auto r = run_supervised_campaign(target.program, seeds, sc);
      if (n == counts[0]) base = r.aggregate_throughput;
      last_agg = r.aggregate_throughput;
      restarts += r.total_restarts;
      row.push_back(
          fmt_double(base > 0 ? r.aggregate_throughput / base : 0.0, 2) +
          "x");

      u64 plot_sum = 0;
      for (u32 id = 0; id < n; ++id) {
        plot_sum += fleet.instance(id).latest().execs;
      }
      const bool match = plot_sum == r.fleet_total.execs &&
                         r.fleet_total.execs == r.total_execs;
      check.add_row({map_scheme_name(scheme), std::to_string(n),
                     fmt_count(plot_sum), fmt_count(r.fleet_total.execs),
                     fmt_count(r.total_execs), match ? "yes" : "MISMATCH"});

      if (n == counts[2]) {
        bench::report().add_series(
            std::string("fleet_") + map_scheme_name(scheme),
            fleet.fleet_series());
        if (!bench::telemetry_dir().empty()) {
          telemetry::StatsEmitter emitter(bench::telemetry_dir() + "/" +
                                          map_scheme_name(scheme));
          if (!emitter.emit_fleet(fleet, "bigmap-bench-fig9")) {
            std::fprintf(stderr, "warning: telemetry emission to %s failed\n",
                         emitter.root().c_str());
          }
        }
      }
    }
    row.push_back(fmt_double(last_agg, 0));
    row.push_back(std::to_string(restarts));
    table.add_row(std::move(row));
  }
  bench::emit("real_thread_scaling", table);
  bench::emit("telemetry_consistency", check);
  std::printf(
      "Note: measured on this host's real cores — scaling flattens at the "
      "physical core count; the simulated section above models the paper's "
      "12-core machine.\n");
}

bool real_procs_enabled() {
  const char* env = std::getenv("BIGMAP_REAL_PROCS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

void run_real_process_section() {
  std::printf(
      "\n(d) Real-process fleet (forked workers over shared memory, "
      "measured): quarantine degradation vs an (N-1)-worker baseline:\n");

  GeneratorParams gp;
  gp.seed = 9;
  gp.live_blocks = 600;
  auto target = generate_target(gp);
  auto seeds = make_seed_corpus(target, 16, 1);

  // Floor of 10k execs/worker even at smoke scales: the degraded fleet
  // pays a fixed cost for the dying worker's short-lived incarnations
  // (fork, buffer setup, seed phase x3), and the budget must be large
  // enough to amortize it or the throughput ratio measures startup cost,
  // not degradation.
  const u64 per_worker =
      bench::scaled_execs(30000) < 10000 ? 10000 : bench::scaled_execs(30000);
  const std::string root =
      std::filesystem::temp_directory_path() /
      ("bigmap_fig9_procs_" + std::to_string(::getpid()));

  const auto run_fleet = [&](const char* name, u32 workers, bool chaos) {
    const std::string dir = root + "/" + name;
    std::filesystem::remove_all(dir);
    procfleet::ProcFleetConfig fc;
    fc.num_workers = workers;
    fc.base.scheme = MapScheme::kTwoLevel;
    fc.base.map.map_size = 2u << 20;
    fc.base.map.huge_pages = false;
    fc.base.max_execs = per_worker;
    fc.base.seed = 0xF19;
    fc.base.sync_interval = 1024;
    fc.poll_ms = 2;
    fc.stall_deadline_ms = 5000;
    fc.max_restarts_per_worker = 10;
    fc.backoff_initial_ms = 5;
    fc.backoff_cap_ms = 50;
    fc.checkpoint_interval = 4096;
    fc.persist_dir = dir;
    if (chaos) {
      // Worker 1 SIGKILLs itself on its first three chaos checks: three
      // abnormal deaths inside the window park it, and its undone budget
      // is redistributed over the three survivors.
      fc.fault_enabled = true;
      fc.fault_seed = 42;
      fc.chaos_check_interval = 64;
      fc.quarantine_deaths = 3;
      fc.quarantine_window_ms = 600000;
      fc.fault_plan.triggers.push_back({FaultSite::kProcKill, 1, 1});
      fc.fault_plan.triggers.push_back({FaultSite::kProcKill, 1, 2});
      fc.fault_plan.triggers.push_back({FaultSite::kProcKill, 1, 3});
    }
    auto r = procfleet::run_process_fleet(target.program, seeds, fc);
    std::filesystem::remove_all(dir);
    return r;
  };

  const auto full = run_fleet("full", 4, false);

  // The degradation comparison alternates (N-1)-baseline and degraded
  // fleets and compares medians: on a shared single-core host absolute
  // throughput drifts minute to minute (frequency scaling, noisy
  // neighbours), so adjacent pairs plus a median are what make a relative
  // 10% bar meaningful. Exec budgets are deterministic and asserted on
  // every repetition.
  constexpr int kReps = 3;
  std::vector<double> base_thr, deg_thr;
  procfleet::ProcFleetResult reduced, degraded;
  bool budgets_exact = full.total_execs == 4 * per_worker;
  bool always_one_quarantined = true;
  for (int rep = 0; rep < kReps; ++rep) {
    const std::string tag = std::to_string(rep);
    reduced = run_fleet(("reduced" + tag).c_str(), 3, false);
    degraded = run_fleet(("degraded" + tag).c_str(), 4, true);
    base_thr.push_back(reduced.aggregate_throughput);
    deg_thr.push_back(degraded.aggregate_throughput);
    budgets_exact = budgets_exact && reduced.total_execs == 3 * per_worker &&
                    degraded.total_execs == 4 * per_worker;
    always_one_quarantined =
        always_one_quarantined && degraded.quarantined == 1;
  }
  std::filesystem::remove_all(root);

  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double ref = median(base_thr);
  const double deg = median(deg_thr);

  TableWriter table({"Fleet", "workers", "quarantined", "total execs",
                     "budget exact", "execs/s", "vs (N-1)", "within 10%"});
  const auto add = [&](const char* name, const procfleet::ProcFleetResult& r,
                       u32 workers, double thr, bool check) {
    const u64 budget = u64{workers} * per_worker;
    const double ratio = ref > 0 ? thr / ref : 0.0;
    const bool within = ratio >= 0.9;
    table.add_row({name, std::to_string(workers),
                   std::to_string(r.quarantined),
                   fmt_count(r.total_execs),
                   r.total_execs == budget && budgets_exact ? "yes" : "NO",
                   fmt_double(thr, 0),
                   fmt_double(ratio, 2) + "x",
                   check ? (within ? "yes" : "NO") : "-"});
  };
  add("full (N=4)", full, 4, full.aggregate_throughput, false);
  add("baseline (N-1=3)", reduced, 3, ref, false);
  add("degraded (1 parked)", degraded, 4, deg, true);
  bench::emit("real_process_degradation", table);

  if (!always_one_quarantined) {
    std::printf("WARNING: expected exactly one quarantined worker in every "
                "degraded repetition\n");
  }
  std::printf(
      "The degraded fleet keeps the parked worker's durable progress and "
      "redistributes its undone budget, so \"total execs\" stays exactly "
      "N x per-worker budget; its throughput should track the (N-1) "
      "baseline, not collapse.\n");
}

bool netfleet_enabled() {
  const char* env = std::getenv("BIGMAP_NETFLEET");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

void run_federated_section() {
  std::printf(
      "\n(e) Federated fleet (two coordinator processes over a loopback "
      "socket, measured): federation union vs one fleet of equal width:\n");

  GeneratorParams gp;
  gp.seed = 33;
  gp.live_blocks = 200;
  gp.num_bugs = 3;
  gp.bug_min_depth = 1;
  gp.bug_max_depth = 1;
  auto target = generate_target(gp);
  auto seeds = make_seed_corpus(target, 4, 1);

  const u64 per_worker =
      bench::scaled_execs(10000) < 2000 ? 2000 : bench::scaled_execs(10000);
  const std::string root =
      std::filesystem::temp_directory_path() /
      ("bigmap_fig9_net_" + std::to_string(::getpid()));

  const auto make_config = [&](const std::string& dir, u32 workers,
                               u64 seed) {
    procfleet::ProcFleetConfig fc;
    fc.num_workers = workers;
    fc.base.scheme = MapScheme::kTwoLevel;
    fc.base.map.map_size = 1u << 16;
    fc.base.map.huge_pages = false;
    fc.base.max_execs = per_worker;
    fc.base.seed = seed;
    fc.base.sync_interval = 1024;
    fc.base.deterministic_timing = true;
    fc.poll_ms = 2;
    fc.stall_deadline_ms = 5000;
    fc.checkpoint_interval = 512;
    fc.persist_dir = dir;
    fc.quarantine_deaths = 0;
    return fc;
  };

  // One fleet of 4 workers (seeds 501..504) vs a federation of 2+2 over
  // the same seed set — the same shape the net-chaos drill pins down.
  std::filesystem::remove_all(root);
  auto single_cfg = make_config(root + "/single", 4, 501);
  const auto single =
      procfleet::run_process_fleet(target.program, seeds, single_cfg);

  auto a = make_config(root + "/a", 2, 501);
  auto b = make_config(root + "/b", 2, 503);
  a.net.node_id = 1;
  b.net.node_id = 2;
  const auto fed = netfleet::run_federated_pair(target.program, seeds, a, b);
  std::filesystem::remove_all(root);

  if (!fed.ok) {
    std::printf("WARNING: federated pair failed: %s\n", fed.error.c_str());
    return;
  }

  const auto sorted_u32 = [](std::vector<u32> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  const bool union_match =
      sorted_u32(single.found_bug_ids) == sorted_u32(fed.found_bug_ids);
  const u64 budget = u64{4} * per_worker;

  TableWriter table({"Topology", "workers", "bugs found", "total execs",
                     "budget exact", "union match", "completed"});
  table.add_row({"single fleet", "4",
                 std::to_string(single.found_bug_ids.size()),
                 fmt_count(single.total_execs),
                 single.total_execs == budget ? "yes" : "NO", "-",
                 single.all_completed() ? "yes" : "NO"});
  table.add_row({"federated 2+2", "2+2",
                 std::to_string(fed.found_bug_ids.size()),
                 fmt_count(fed.total_execs),
                 fed.total_execs == budget ? "yes" : "NO",
                 union_match ? "yes" : "NO",
                 fed.all_completed ? "yes" : "NO"});
  bench::emit("federated_union", table);

  TableWriter link({"Half", "sent", "recv", "novelty filtered", "dups",
                    "reconnects", "bytes tx"});
  const auto add_link = [&](const char* who, const netfleet::LinkStats& n) {
    link.add_row({who, fmt_count(n.records_sent),
                  fmt_count(n.records_received),
                  fmt_count(n.novelty_filtered),
                  fmt_count(n.duplicates_dropped), fmt_count(n.reconnects),
                  fmt_count(n.bytes_sent)});
  };
  add_link("a (listener)", fed.a.net);
  add_link("b (connector)", fed.b.net);
  bench::emit("federated_link", link);

  std::printf(
      "The federation pays a socket round-trip per novel corpus entry but "
      "must neither lose nor duplicate finds: \"union match\" compares the "
      "planted-bug union against the equal-width single fleet, and both "
      "topologies deliver exactly 4 x per-worker execs.\n");
}

void run_star_section() {
  std::printf(
      "\n(f) Three-node star federation (hub + 2 spokes, measured): "
      "virgin-map novelty oracle vs content-hash-only filtering:\n");

  GeneratorParams gp;
  gp.seed = 33;
  gp.live_blocks = 200;
  gp.num_bugs = 3;
  gp.bug_min_depth = 1;
  gp.bug_max_depth = 1;
  auto target = generate_target(gp);
  auto seeds = make_seed_corpus(target, 4, 1);

  const u64 per_worker =
      bench::scaled_execs(10000) < 2000 ? 2000 : bench::scaled_execs(10000);
  const std::string root =
      std::filesystem::temp_directory_path() /
      ("bigmap_fig9_star_" + std::to_string(::getpid()));

  const auto make_node = [&](const std::string& dir, u32 node_id, u64 seed,
                             bool oracle) {
    procfleet::ProcFleetConfig fc;
    fc.num_workers = 2;
    fc.base.scheme = MapScheme::kTwoLevel;
    fc.base.map.map_size = 1u << 16;
    fc.base.map.huge_pages = false;
    fc.base.max_execs = per_worker;
    fc.base.seed = seed;
    fc.base.sync_interval = 1024;
    fc.base.deterministic_timing = true;
    fc.poll_ms = 2;
    fc.stall_deadline_ms = 5000;
    fc.checkpoint_interval = 512;
    fc.persist_dir = dir;
    fc.quarantine_deaths = 0;
    fc.net.node_id = node_id;
    fc.net_virgin_oracle = oracle;
    return fc;
  };

  // Reference: one fleet of the federation's total width (6 workers) over
  // the same seed ladder — the drill-pinned union/budget baseline.
  std::filesystem::remove_all(root);
  auto single_cfg = make_node(root + "/single", 0, 501, false);
  single_cfg.num_workers = 6;
  const u64 t0 = monotonic_ns();
  const auto single =
      procfleet::run_process_fleet(target.program, seeds, single_cfg);
  const double single_secs =
      static_cast<double>(monotonic_ns() - t0) / 1e9;

  const auto run_star = [&](const char* tag, bool oracle,
                            double* secs) -> netfleet::StarResult {
    std::vector<procfleet::ProcFleetConfig> nodes;
    nodes.push_back(
        make_node(root + "/" + tag + "_hub", 1, 501, oracle));
    nodes.push_back(make_node(root + "/" + tag + "_s1", 2, 503, oracle));
    nodes.push_back(make_node(root + "/" + tag + "_s2", 3, 505, oracle));
    const u64 start = monotonic_ns();
    auto r = netfleet::run_federated_star(target.program, seeds, nodes);
    *secs = static_cast<double>(monotonic_ns() - start) / 1e9;
    return r;
  };

  double hash_secs = 0, oracle_secs = 0;
  const auto hash_only = run_star("hash", false, &hash_secs);
  const auto with_oracle = run_star("oracle", true, &oracle_secs);
  std::filesystem::remove_all(root);

  if (!hash_only.ok || !with_oracle.ok) {
    std::printf("WARNING: star federation failed: %s%s\n",
                hash_only.error.c_str(), with_oracle.error.c_str());
    return;
  }

  const auto sorted_u32 = [](std::vector<u32> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  const std::vector<u32> ref_bugs = sorted_u32(single.found_bug_ids);
  const u64 budget = u64{6} * per_worker;

  TableWriter table({"Topology", "workers", "bugs found", "total execs",
                     "budget exact", "union match", "agg exec/s"});
  const auto add = [&](const char* name, const std::vector<u32>& bugs,
                       u64 execs, double secs) {
    table.add_row({name, "3x2",
                   std::to_string(bugs.size()), fmt_count(execs),
                   execs == budget ? "yes" : "NO",
                   sorted_u32(bugs) == ref_bugs ? "yes" : "NO",
                   fmt_double(secs > 0 ? static_cast<double>(execs) / secs
                                       : 0.0,
                              0)});
  };
  table.add_row({"single fleet", "6",
                 std::to_string(single.found_bug_ids.size()),
                 fmt_count(single.total_execs),
                 single.total_execs == budget ? "yes" : "NO", "-",
                 fmt_double(single_secs > 0
                                ? static_cast<double>(single.total_execs) /
                                      single_secs
                                : 0.0,
                            0)});
  add("star, hash filter", hash_only.found_bug_ids, hash_only.total_execs,
      hash_secs);
  add("star, virgin oracle", with_oracle.found_bug_ids,
      with_oracle.total_execs, oracle_secs);
  bench::emit("star_federation", table);

  // Filtering economics: of every candidate transmission the gateways
  // considered, what fraction was suppressed before it cost wire bytes.
  // The hash filter only suppresses literal duplicates; the oracle
  // additionally rejects distinct inputs that flip no virgin bits in its
  // model of the receiving side (rejections include inbound model updates
  // that pin down "never echo this back").
  TableWriter filt({"Mode", "records sent", "hash-filtered",
                    "oracle rejected", "bytes tx", "novelty reject ratio"});
  const auto sum_stats = [](const netfleet::StarResult& r) {
    netfleet::LinkStats net;
    corpus::OracleStats oc;
    for (const auto& n : r.nodes) {
      net.records_sent += n.net.records_sent;
      net.novelty_filtered += n.net.novelty_filtered;
      net.bytes_sent += n.net.bytes_sent;
      oc.checked += n.oracle.checked;
      oc.accepted += n.oracle.accepted;
      oc.rejected += n.oracle.rejected;
    }
    return std::make_pair(net, oc);
  };
  const auto add_filt = [&](const char* mode, const netfleet::StarResult& r) {
    const auto [net, oc] = sum_stats(r);
    const u64 suppressed = net.novelty_filtered + oc.rejected;
    const double ratio =
        suppressed + net.records_sent > 0
            ? static_cast<double>(suppressed) /
                  static_cast<double>(suppressed + net.records_sent)
            : 0.0;
    filt.add_row({mode, fmt_count(net.records_sent),
                  fmt_count(net.novelty_filtered), fmt_count(oc.rejected),
                  fmt_count(net.bytes_sent), fmt_double(ratio, 3)});
  };
  add_filt("hash filter", hash_only);
  add_filt("virgin oracle", with_oracle);
  bench::emit("star_novelty_filtering", filt);

  std::printf(
      "Both stars must reproduce the 6-worker fleet's planted-bug union at "
      "the exact 6 x per-worker budget; the oracle row's higher reject "
      "ratio and lower wire volume are the virgin-map dividend — "
      "distinct-but-redundant inputs never reach the wire.\n");
}

struct Profile {
  const char* name;
  usize used_keys;       // coverage keys the campaign exercises
  usize edges_per_exec;  // dynamic path length
};

// Representative benchmarks spanning Table II's size range.
constexpr Profile kProfiles[] = {
    {"libpng", 1200, 12000},  {"proj4", 6400, 12000},
    {"openssl", 10300, 8000}, {"sqlite3", 20000, 6000},
    {"gvn", 52000, 5000},     {"instcombine", 105000, 5000},
};

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv, "fig9");
  bench::print_header(
      "Figure 9 — Parallel-fuzzing scalability at a 2MB map (simulated "
      "12-core Xeon E5645)",
      "AFL cannot maintain scaling (negative/flat slope past 4 instances); "
      "BigMap stays near-linear; avg speedups 4.9x/9.2x/13.8x at 4/8/12");

  const u32 counts[] = {1, 4, 8, 12};

  TableWriter table({"Benchmark", "Scheme", "n=1", "n=4", "n=8", "n=12"});
  double sum_speedup[4] = {0, 0, 0, 0};

  for (const Profile& prof : kProfiles) {
    double base[2] = {0, 0};
    double agg[2][4];
    for (MapScheme scheme : {MapScheme::kFlat, MapScheme::kTwoLevel}) {
      const int i = scheme == MapScheme::kTwoLevel;
      std::vector<std::string> row{prof.name, map_scheme_name(scheme)};
      for (int ci = 0; ci < 4; ++ci) {
        SmpParams p;
        p.scheme = scheme;
        p.map_size = 2u << 20;
        p.used_keys = prof.used_keys;
        p.edges_per_exec = prof.edges_per_exec;
        p.instances = counts[ci];
        p.execs_per_instance =
            static_cast<u32>(6 * bench::scale()) < 3
                ? 3
                : static_cast<u32>(6 * bench::scale());
        auto r = simulate_parallel_fuzzing(p);
        agg[i][ci] = r.aggregate_throughput;
        if (ci == 0) base[i] = r.aggregate_throughput;
        row.push_back(fmt_double(r.aggregate_throughput / base[i], 2) +
                      "x");
      }
      table.add_row(std::move(row));
    }
    for (int ci = 0; ci < 4; ++ci) {
      sum_speedup[ci] += agg[1][ci] / agg[0][ci];
    }
  }
  std::printf("(a) Aggregate throughput normalized to one instance:\n");
  bench::emit("normalized_throughput", table);

  std::printf("\n(b) BigMap speedup over AFL at equal instance counts "
              "(average over benchmarks):\n");
  TableWriter sp({"Instances", "BigMap/AFL speedup", "Paper"});
  const char* paper[] = {"-", "4.9x", "9.2x", "13.8x"};
  constexpr int kNumProfiles = 6;
  for (int ci = 0; ci < 4; ++ci) {
    sp.add_row({std::to_string(counts[ci]),
                fmt_double(sum_speedup[ci] / kNumProfiles, 1) + "x",
                paper[ci]});
  }
  bench::emit("speedup_vs_afl", sp);
  std::printf(
      "\nNote: the paper normalizes (b) to AFL at the same instance count; "
      "absolute ratios here inherit this reproduction's single-instance "
      "gap (see EXPERIMENTS.md). The shape to check: the ratio GROWS with "
      "instance count, and AFL's (a) row flattens while BigMap's stays "
      "near 1:1.\n");

  if (real_threads_enabled()) {
    run_real_thread_section();
  } else {
    std::printf(
        "\nSet BIGMAP_REAL_THREADS=1 for measured real-thread supervised "
        "campaigns alongside the simulation.\n");
  }
  if (real_procs_enabled()) {
    run_real_process_section();
  } else {
    std::printf(
        "Set BIGMAP_REAL_PROCS=1 for the measured forked-process fleet and "
        "its quarantine-degradation comparison.\n");
  }
  if (netfleet_enabled()) {
    run_federated_section();
    run_star_section();
  } else {
    std::printf(
        "Set BIGMAP_NETFLEET=1 for the measured two-coordinator federation "
        "over a loopback socket and its union-equality comparison.\n");
  }
  return bench::finish();
}
