// Figure 6: test-case generation throughput of AFL vs. BigMap at 64kB,
// 256kB, 2MB, and 8MB maps across the 19 benchmarks, plus the average
// speedup line the paper headlines (0.98x / 1.4x / 4.5x / 33.1x).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.h"

using namespace bigmap;

int main(int argc, char** argv) {
  bench::init(argc, argv, "fig6");
  bench::print_header(
      "Figure 6 — Throughput vs. map size (AFL vs. BigMap)",
      "AFL collapses as maps grow (avg 4,400/s @64kB to 125/s @8MB); "
      "BigMap stays flat; avg speedups 0.98x/1.4x/4.5x/33.1x");

  const usize sizes[] = {64u << 10, 256u << 10, 2u << 20, 8u << 20};

  TableWriter table({"Benchmark", "Map", "AFL exec/s", "BigMap exec/s",
                     "Speedup"});
  double geo_sum[4] = {0, 0, 0, 0};
  double afl_sum[4] = {0, 0, 0, 0};
  double big_sum[4] = {0, 0, 0, 0};
  int count = 0;

  for (const BenchmarkInfo& info : full_table2_suite()) {
    auto target = build_benchmark(info);
    auto seeds = bench::capped_seeds(target, info);
    ++count;

    for (int si = 0; si < 4; ++si) {
      const usize size = sizes[si];
      double tput[2] = {0, 0};
      for (MapScheme scheme : {MapScheme::kFlat, MapScheme::kTwoLevel}) {
        CampaignConfig c = bench::throughput_config(
            scheme, size, bench::config_seconds(1.5), /*seed=*/1);
        auto r = run_campaign(target.program, seeds, c);
        tput[scheme == MapScheme::kTwoLevel] = r.steady_throughput();
      }
      const double speedup = tput[0] > 0 ? tput[1] / tput[0] : 0;
      geo_sum[si] += std::log(std::max(speedup, 1e-9));
      afl_sum[si] += tput[0];
      big_sum[si] += tput[1];
      table.add_row({info.name, fmt_bytes(size), fmt_double(tput[0], 0),
                     fmt_double(tput[1], 0), fmt_double(speedup, 2) + "x"});
    }
  }
  bench::emit("throughput", table);

  std::printf("\nAverages across %d benchmarks:\n", count);
  TableWriter avg({"Map", "AFL avg exec/s", "BigMap avg exec/s",
                   "Geomean speedup", "Paper avg speedup"});
  const char* paper[] = {"0.98x", "1.4x", "4.5x", "33.1x"};
  for (int si = 0; si < 4; ++si) {
    avg.add_row({fmt_bytes(sizes[si]), fmt_double(afl_sum[si] / count, 0),
                 fmt_double(big_sum[si] / count, 0),
                 fmt_double(std::exp(geo_sum[si] / count), 2) + "x",
                 paper[si]});
  }
  bench::emit("averages", avg);
  return bench::finish();
}
