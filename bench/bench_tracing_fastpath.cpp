// Coverage-guided tracing fast path: dual-mode (untraced + oracle-fire
// re-execution) vs. always-trace campaigns at equal exec budgets.
//
// Two claims, in the spirit of UnTracer/"Full-speed Fuzzing": at steady
// state the overwhelming majority of executions are boring and complete
// untraced (>80% even at smoke scale), and skipping the whole-map pipeline
// for them buys an end-to-end speedup that grows with map size — while
// finding EXACTLY the same queue entries, crashes, and coverage
// (deterministic timing, equal seeds; mode_diff_test pins the equivalence
// exhaustively).
//
// Trimming is disabled: trim executions run the full map pipeline in both
// modes by design, and this bench isolates the exec-path difference.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "telemetry/sink.h"

using namespace bigmap;

namespace {

struct RowSpec {
  const char* benchmark;
  MapScheme scheme;
  usize map_size;
};

CampaignConfig tracing_config(const RowSpec& spec, TracingMode tracing,
                              u64 execs) {
  CampaignConfig c;
  c.scheme = spec.scheme;
  c.tracing = tracing;
  c.map.map_size = spec.map_size;
  c.max_execs = execs;
  c.seed = 1;
  c.trim_enabled = false;
  c.deterministic_timing = true;  // identical exec streams across modes
  return c;
}

bool finds_equal(const CampaignResult& a, const CampaignResult& b) {
  return a.execs == b.execs && a.interesting == b.interesting &&
         a.covered_positions == b.covered_positions &&
         a.corpus_size == b.corpus_size &&
         a.crashes_ground_truth == b.crashes_ground_truth &&
         a.crashes_crashwalk_unique == b.crashes_crashwalk_unique &&
         a.hangs == b.hangs;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv, "tracing");
  bench::print_header(
      "Coverage-guided tracing — dual-mode vs. always-trace campaigns",
      "boring execs skip the whole-map pipeline entirely: >80% untraced at "
      "steady state, equal finds, end-to-end speedup growing with map size");

  // Three BigMap rows at the paper's baseline 64 kB, plus one flat-map row
  // at 2 MB where reset/classify/compare dominate and skipping them pays
  // the most.
  const RowSpec rows[] = {
      {"zlib", MapScheme::kTwoLevel, 64u << 10},
      {"proj4", MapScheme::kTwoLevel, 64u << 10},
      {"sqlite3", MapScheme::kTwoLevel, 64u << 10},
      {"proj4", MapScheme::kFlat, 64u << 10},
      {"proj4", MapScheme::kFlat, 2u << 20},
  };

  u64 budget = bench::scaled_execs(50000);
  if (budget < 4000) budget = 4000;
  bench::report().set_meta("budget_execs", budget);

  TableWriter ratio({"Benchmark", "Scheme", "Map", "Execs", "Untraced",
                     "Fires", "Steady untraced"});
  TableWriter speedup({"Benchmark", "Scheme", "Map", "Always exec/s",
                       "Dual exec/s", "Speedup", "Finds equal"});

  for (const RowSpec& spec : rows) {
    const BenchmarkInfo* info = find_benchmark(spec.benchmark);
    if (info == nullptr) continue;
    auto target = build_benchmark(*info);
    auto seeds = bench::capped_seeds(target, *info);
    const char* scheme_name =
        spec.scheme == MapScheme::kFlat ? "AFL" : "BigMap";

    telemetry::TelemetrySink sink(0);
    CampaignConfig dual_cfg = tracing_config(spec, TracingMode::kDual,
                                             budget);
    dual_cfg.telemetry = &sink;
    dual_cfg.telemetry_interval = budget / 6;
    CampaignResult dual = run_campaign(target.program, seeds, dual_cfg);

    CampaignResult always = run_campaign(
        target.program, seeds,
        tracing_config(spec, TracingMode::kAlways, budget));

    const u64 steady = dual.execs - dual.seed_execs;
    const double untraced_pct =
        steady > 0 ? 100.0 * static_cast<double>(dual.tracing_untraced_execs) /
                         static_cast<double>(steady)
                   : 0.0;
    ratio.add_row({spec.benchmark, scheme_name, fmt_bytes(spec.map_size),
                   std::to_string(dual.execs),
                   std::to_string(dual.tracing_untraced_execs),
                   std::to_string(dual.tracing_oracle_fires),
                   fmt_double(untraced_pct, 1) + "%"});

    const double ratio_x = always.steady_throughput() > 0
                               ? dual.steady_throughput() /
                                     always.steady_throughput()
                               : 0.0;
    speedup.add_row({spec.benchmark, scheme_name, fmt_bytes(spec.map_size),
                     fmt_double(always.steady_throughput(), 0),
                     fmt_double(dual.steady_throughput(), 0),
                     fmt_double(ratio_x, 2) + "x",
                     finds_equal(dual, always) ? "yes" : "NO"});

    bench::report().add_series(
        std::string("dual/") + spec.benchmark + "/" + scheme_name,
        sink.series());
  }

  bench::emit("tracing_ratio", ratio);
  std::printf("\n");
  bench::emit("speedup", speedup);
  return bench::finish();
}
