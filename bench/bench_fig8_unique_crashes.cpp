// Figure 8: unique crashes found with varying map sizes on the LLVM
// benchmarks. The paper's pattern: AFL peaks at 256kB (64kB loses crashes
// to collisions, 2MB/8MB lose them to throughput collapse); BigMap keeps
// improving with map size because it pays nothing for the larger map.
// Crashes are deduplicated Crashwalk-style (stack hash + faulting address).
#include <cstdio>
#include <iostream>

#include "bench_common.h"

using namespace bigmap;

int main(int argc, char** argv) {
  bench::init(argc, argv, "fig8");
  bench::print_header(
      "Figure 8 — Unique crashes vs. map size (LLVM benchmarks)",
      "AFL finds the most crashes at 256kB and degrades on bigger maps; "
      "BigMap does not degrade");

  const usize sizes[] = {64u << 10, 256u << 10, 2u << 20, 8u << 20};

  TableWriter table({"Benchmark", "Map", "AFL crashes", "BigMap crashes",
                     "AFL(gt)", "BigMap(gt)"});
  u64 totals[2][4] = {};

  for (const BenchmarkInfo& info : llvm_suite()) {
    auto target = build_benchmark(info);
    auto seeds = bench::capped_seeds(target, info);

    for (int si = 0; si < 4; ++si) {
      u64 cw[2] = {0, 0}, gt[2] = {0, 0};
      for (MapScheme scheme : {MapScheme::kFlat, MapScheme::kTwoLevel}) {
        CampaignConfig c = bench::throughput_config(
            scheme, sizes[si], bench::config_seconds(6.0), /*seed=*/5);
        auto r = run_campaign(target.program, seeds, c);
        const int i = scheme == MapScheme::kTwoLevel;
        cw[i] = r.crashes_crashwalk_unique;
        gt[i] = r.crashes_ground_truth;
        totals[i][si] += cw[i];
      }
      table.add_row({info.name, fmt_bytes(sizes[si]), fmt_count(cw[0]),
                     fmt_count(cw[1]), fmt_count(gt[0]), fmt_count(gt[1])});
    }
  }
  bench::emit("unique_crashes", table);

  std::printf("\nTotals across the suite (Crashwalk-unique):\n");
  TableWriter tot({"Map", "AFL", "BigMap"});
  for (int si = 0; si < 4; ++si) {
    tot.add_row({fmt_bytes(sizes[si]), fmt_count(totals[0][si]),
                 fmt_count(totals[1][si])});
  }
  bench::emit("totals", tot);
  std::printf(
      "\nShape check: AFL's total should peak at 256kB and fall at 2M/8M; "
      "BigMap's should be flat or rising with map size.\n");
  return bench::finish();
}
