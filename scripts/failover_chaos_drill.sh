#!/usr/bin/env bash
# Self-healing federation chaos drill (ISSUE acceptance: failover). Five
# stages over the fixed failover_drill campaign shape (8 planted-bug
# workers, deterministic timing), comparing one local fleet against a
# 4-rank failover federation with the virgin-map oracle and incremental
# delta sync on every link:
#
#   1. single          — one 8-worker fleet, no network; the reference
#                        find-union and exec budget
#   2. star4           — 4-rank federation (2 workers per rank), clean
#                        network, no failures; epoch stays 1; must equal
#                        single exactly
#   3. failover-kill   — rank 0 (the founding leader) is SIGKILLed,
#                        process group and all, mid-campaign; rank 1 is
#                        elected into epoch 2, the spokes re-home, and the
#                        resurrected victim rejoins the new epoch as a
#                        spoke; must equal single exactly
#   4. failover-stale  — same kill, but the victim resurrects stale-fatal:
#                        it must observe the newer epoch and latch fenced,
#                        never re-entering the federation, while its local
#                        fleet still finishes its budget; must equal
#                        single exactly
#   5. failover-storm  — the kill plus a seeded network storm (drops,
#                        delays, torn frames, resets) on the survivors
#                        while they elect; must equal single exactly
#
# failover_drill self-checks that each failure actually engaged (elections
# fired, the epoch advanced, delta sync rebuilt the promoted hub's oracle
# models with zero re-executions, the stale node fenced) and exits
# non-zero when the drill proved nothing; this script additionally asserts
# the headline diagnostics and then runs statecheck over every stage's
# wreckage — the federation WALs each rank journaled must decode with
# monotone epochs and well-formed deltas. CI runs this as the
# federation-failover job.
#
# Usage: scripts/failover_chaos_drill.sh [work-dir]   (default: mktemp -d)
# Requires failover_drill and statecheck
# (`cmake --build build --target failover_drill statecheck`).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
DRILL="$BUILD_DIR/src/fuzzer/failover_drill"
STATECHECK="$BUILD_DIR/src/persist/statecheck"

WORK_DIR="${1:-$(mktemp -d)}"
mkdir -p "$WORK_DIR"
rm -rf "$WORK_DIR/single" "$WORK_DIR/star4" "$WORK_DIR/kill" \
  "$WORK_DIR/stale" "$WORK_DIR/storm"

cleanup() {
  # Each rank is a separate coordinator process with its own forked
  # workers; -x matches the exact binary name only. pkill alone only
  # QUEUES the signal — a rank reaping its own workers can outlive the
  # script and leave orphans holding listener ports, so poll until every
  # process is actually gone (bounded; SIGKILL is not ignorable,
  # lingering past it means something is stuck in the kernel).
  pkill -9 -x failover_drill 2> /dev/null || true
  for _ in $(seq 1 50); do
    pgrep -x failover_drill > /dev/null 2>&1 || return 0
    sleep 0.1
  done
  echo "WARN: orphaned failover_drill processes survived cleanup" >&2
  pgrep -ax failover_drill >&2 || true
}
trap cleanup EXIT

# Compares the diff-friendly tail of two drill outputs; any divergence is
# a drill failure (failover changed what the federation finds or how much
# budget it delivers).
compare_outputs() {
  local label=$1 base=$2 got=$3
  local key base_line got_line
  for key in bug_ids stack_hashes total_execs all_completed; do
    base_line=$(grep "^$key:" "$base")
    got_line=$(grep "^$key:" "$got")
    if [ "$base_line" != "$got_line" ]; then
      echo "FAIL: $key diverged ($label)" >&2
      echo "  single: $base_line" >&2
      echo "  $label: $got_line" >&2
      exit 1
    fi
    echo "  $key ok ($base_line)"
  done
}

# Audits the federation WALs a stage left behind: every rank journal must
# decode, epochs must be monotone, every delta record well-formed.
audit_wreckage() {
  local label=$1 dir=$2
  if ! "$STATECHECK" --corpus "$dir" > "$dir.fsck" 2>&1; then
    echo "FAIL: statecheck rejected the $label wreckage" >&2
    cat "$dir.fsck" >&2
    exit 1
  fi
  grep "federation.wal" "$dir.fsck" | sed 's/^/  /'
  if ! grep -q "federation.wal: ok" "$dir.fsck"; then
    echo "FAIL: $label left no federation WAL to audit" >&2
    exit 1
  fi
}

echo "== single fleet (no network) =="
"$DRILL" single "$WORK_DIR/single" | tee "$WORK_DIR/single.txt"

echo
echo "== 4-rank failover federation, clean network =="
"$DRILL" star4 "$WORK_DIR/star4" > "$WORK_DIR/star4.txt" \
  2> "$WORK_DIR/star4.diag"
cat "$WORK_DIR/star4.txt" "$WORK_DIR/star4.diag"
compare_outputs star4 "$WORK_DIR/single.txt" "$WORK_DIR/star4.txt"
# The clean federation must ship corpus and delta-sync the oracle models;
# nothing may have been elected.
grep -qE 'deltas_applied=[1-9]' "$WORK_DIR/star4.diag" || {
  echo "FAIL: clean star4 applied no oracle deltas" >&2
  exit 1
}
grep -qE 'elections=[1-9]' "$WORK_DIR/star4.diag" && {
  echo "FAIL: clean star4 held an election" >&2
  exit 1
}
audit_wreckage star4 "$WORK_DIR/star4"

echo
echo "== leader SIGKILL: election, re-home, victim rejoins =="
"$DRILL" failover-kill "$WORK_DIR/kill" > "$WORK_DIR/kill.txt" \
  2> "$WORK_DIR/kill.diag"
cat "$WORK_DIR/kill.txt" "$WORK_DIR/kill.diag"
compare_outputs failover-kill "$WORK_DIR/single.txt" "$WORK_DIR/kill.txt"
# The survivors must have elected into a new epoch, the promoted hub must
# have rebuilt oracle state from deltas, and the victim must have rejoined.
grep -qE 'elections=[1-9]' "$WORK_DIR/kill.diag" || {
  echo "FAIL: leader kill triggered no election" >&2
  exit 1
}
grep -qE 'epoch=2' "$WORK_DIR/kill.diag" || {
  echo "FAIL: the epoch never advanced past the kill" >&2
  exit 1
}
grep -qE 'rejoins=[1-9]' "$WORK_DIR/kill.diag" || {
  echo "FAIL: the resurrected leader never rejoined" >&2
  exit 1
}
grep -qE 'deltas_applied=[1-9]' "$WORK_DIR/kill.diag" || {
  echo "FAIL: the promoted hub applied no oracle deltas" >&2
  exit 1
}
audit_wreckage failover-kill "$WORK_DIR/kill"

echo
echo "== leader SIGKILL with stale resurrection: must fence =="
"$DRILL" failover-stale "$WORK_DIR/stale" > "$WORK_DIR/stale.txt" \
  2> "$WORK_DIR/stale.diag"
cat "$WORK_DIR/stale.txt" "$WORK_DIR/stale.diag"
compare_outputs failover-stale "$WORK_DIR/single.txt" "$WORK_DIR/stale.txt"
# The stale victim must latch fenced, and the new leader must have seen
# and dropped its stale hello.
grep -qE 'fenced=[1-9]' "$WORK_DIR/stale.diag" || {
  echo "FAIL: the stale node never fenced" >&2
  exit 1
}
grep -qE 'stale_hellos=[1-9]' "$WORK_DIR/stale.diag" || {
  echo "FAIL: no stale hello was ever dropped" >&2
  exit 1
}
audit_wreckage failover-stale "$WORK_DIR/stale"

echo
echo "== leader SIGKILL under network storm =="
"$DRILL" failover-storm "$WORK_DIR/storm" > "$WORK_DIR/storm.txt" \
  2> "$WORK_DIR/storm.diag"
cat "$WORK_DIR/storm.txt" "$WORK_DIR/storm.diag"
compare_outputs failover-storm "$WORK_DIR/single.txt" "$WORK_DIR/storm.txt"
grep -qE 'elections=[1-9]' "$WORK_DIR/storm.diag" || {
  echo "FAIL: storm stage held no election" >&2
  exit 1
}
grep -qE 'reconnects=[1-9]' "$WORK_DIR/storm.diag" || {
  echo "FAIL: the storm forced no reconnects" >&2
  exit 1
}
audit_wreckage failover-storm "$WORK_DIR/storm"

echo
echo "failover chaos drill PASSED"
