#!/usr/bin/env bash
# Whole-process crash-recovery drill: SIGKILL a persisted fleet mid-run,
# fsck what it left behind with statecheck, relaunch with --resume, and
# assert the resumed run reproduces the uninterrupted baseline exactly —
# same crash union, same total exec budget. CI runs this as the
# crash-recovery job (ISSUE acceptance: whole-process resume).
#
# Usage: scripts/crash_recovery_drill.sh [work-dir]   (default: mktemp -d)
# Requires the resume_drill and statecheck binaries (`cmake --build build
# --target resume_drill statecheck`).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
DRILL="$BUILD_DIR/src/fuzzer/resume_drill"
STATECHECK="$BUILD_DIR/src/persist/statecheck"

WORK_DIR="${1:-$(mktemp -d)}"
FLEET_DIR="$WORK_DIR/fleet"
mkdir -p "$WORK_DIR"
rm -rf "$FLEET_DIR"

RUN_PID=""
cleanup() {
  if [ -n "$RUN_PID" ] && kill -0 "$RUN_PID" 2> /dev/null; then
    kill -9 "$RUN_PID" 2> /dev/null || true
  fi
}
trap cleanup EXIT

echo "== baseline (fault-free, no persistence) =="
"$DRILL" baseline | tee "$WORK_DIR/baseline.txt"

echo
echo "== persisted run, SIGKILL mid-campaign =="
"$DRILL" run "$FLEET_DIR" > "$WORK_DIR/run.txt" 2>&1 &
RUN_PID=$!
# Wait until checkpoints exist so the kill provably lands mid-run, after
# state has been committed (the run mode is slowed to take ~minutes). If
# no checkpoint ever appears, the comparison below would be vacuous, so
# that is a hard failure — never a silent skip.
SAW_SNAPS=0
for _ in $(seq 1 120); do
  if compgen -G "$FLEET_DIR/instance-*/snap-*.bms" > /dev/null; then
    SAW_SNAPS=1
    break
  fi
  if ! kill -0 "$RUN_PID" 2> /dev/null; then
    break
  fi
  sleep 0.5
done
if [ "$SAW_SNAPS" -ne 1 ]; then
  echo "FAIL: no checkpoints appeared within the bounded wait; the kill" >&2
  echo "      cannot land mid-run and the drill would prove nothing" >&2
  cat "$WORK_DIR/run.txt" >&2 || true
  exit 1
fi
sleep 2
if ! kill -0 "$RUN_PID" 2> /dev/null; then
  echo "FAIL: fleet finished before the kill; drill proves nothing" >&2
  cat "$WORK_DIR/run.txt"
  exit 1
fi
kill -9 "$RUN_PID"
set +e
wait "$RUN_PID"
STATUS=$?
set -e
RUN_PID=""
echo "fleet killed (exit status $STATUS)"
if [ "$STATUS" -ne 137 ]; then
  echo "FAIL: expected SIGKILL exit status 137, got $STATUS" >&2
  exit 1
fi

echo
echo "== statecheck on what the dead process left behind =="
"$STATECHECK" --fleet "$FLEET_DIR"

echo
echo "== resume =="
"$DRILL" resume "$FLEET_DIR" | tee "$WORK_DIR/resume.txt"
grep -q '^resumed: 1$' "$WORK_DIR/resume.txt" || {
  echo "FAIL: resume run did not replay the fleet journal" >&2
  exit 1
}

echo
echo "== comparing resumed run against the baseline =="
for key in bug_ids stack_hashes total_execs all_completed; do
  base_line=$(grep "^$key:" "$WORK_DIR/baseline.txt")
  res_line=$(grep "^$key:" "$WORK_DIR/resume.txt")
  if [ "$base_line" != "$res_line" ]; then
    echo "FAIL: $key diverged after crash recovery" >&2
    echo "  baseline: $base_line" >&2
    echo "  resumed : $res_line" >&2
    exit 1
  fi
  echo "  $key ok ($base_line)"
done

echo
echo "crash-recovery drill PASSED"
