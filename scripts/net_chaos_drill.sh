#!/usr/bin/env bash
# Federated network-chaos drill (ISSUE acceptance: netfleet). Four stages
# over the fixed net_drill campaign shape (4 planted-bug workers total,
# deterministic timing), comparing one local fleet against a two-coordinator
# federation joined by a fault-injected loopback PeerLink:
#
#   1. single          — one 4-worker fleet, no network; the reference
#                        find-union and exec budget
#   2. pair            — federated pair (2 coordinators x 2 workers),
#                        clean network; must equal single exactly
#   3. pair-storm      — the full network storm (seeded frame drops,
#                        delays, torn-frame short writes, connection
#                        resets, a partition); must equal single exactly
#   4. pair-partition  — a long mid-campaign partition-and-heal; both
#                        sides keep fuzzing through the cut, reconcile on
#                        heal, and must equal single exactly
#
# Then two star stages over a 6-worker budget, with the virgin-map novelty
# oracle gating every gateway link (corpus/novelty.h):
#
#   5. single-wide     — one 6-worker fleet; the star reference
#   6. star            — 3-node hub federation (hub + 2 spokes, 2 workers
#                        each); merged find-union must equal single-wide
#   7. star-storm      — the same star under the network storm
#
# net_drill itself self-checks that corpus exchange happened and that the
# chaos modes actually injected faults and forced reconnects; this script
# additionally asserts the link diagnostics show the partition was
# observed. CI runs this as the net-chaos job.
#
# Usage: scripts/net_chaos_drill.sh [work-dir]   (default: mktemp -d)
# Requires the net_drill binary (`cmake --build build --target net_drill`).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
DRILL="$BUILD_DIR/src/fuzzer/net_drill"

WORK_DIR="${1:-$(mktemp -d)}"
mkdir -p "$WORK_DIR"
rm -rf "$WORK_DIR/single" "$WORK_DIR/pair" "$WORK_DIR/storm" \
  "$WORK_DIR/partition" "$WORK_DIR/single_wide" "$WORK_DIR/star" \
  "$WORK_DIR/star_storm"

cleanup() {
  # The federated halves are separate coordinator processes with their own
  # forked workers; -x matches the exact binary name only. pkill alone
  # only QUEUES the signal — a half reaping its own workers can outlive
  # the script and leave orphans holding listener ports, so poll until
  # every process is actually gone (bounded; SIGKILL is not ignorable,
  # lingering past it means something is stuck in the kernel).
  pkill -9 -x net_drill 2> /dev/null || true
  for _ in $(seq 1 50); do
    pgrep -x net_drill > /dev/null 2>&1 || return 0
    sleep 0.1
  done
  echo "WARN: orphaned net_drill processes survived cleanup" >&2
  pgrep -ax net_drill >&2 || true
}
trap cleanup EXIT

# Compares the diff-friendly tail of two net_drill outputs; any divergence
# is a drill failure (the federation changed what the fleet finds or how
# much budget it delivers).
compare_outputs() {
  local label=$1 base=$2 got=$3
  local key base_line got_line
  for key in bug_ids stack_hashes total_execs all_completed; do
    base_line=$(grep "^$key:" "$base")
    got_line=$(grep "^$key:" "$got")
    if [ "$base_line" != "$got_line" ]; then
      echo "FAIL: $key diverged ($label)" >&2
      echo "  single: $base_line" >&2
      echo "  $label: $got_line" >&2
      exit 1
    fi
    echo "  $key ok ($base_line)"
  done
}

echo "== single fleet (no network) =="
"$DRILL" single "$WORK_DIR/single" | tee "$WORK_DIR/single.txt"

echo
echo "== federated pair, clean network =="
"$DRILL" pair "$WORK_DIR/pair" > "$WORK_DIR/pair.txt" \
  2> "$WORK_DIR/pair.diag"
cat "$WORK_DIR/pair.txt" "$WORK_DIR/pair.diag"
compare_outputs pair "$WORK_DIR/single.txt" "$WORK_DIR/pair.txt"
# The clean pair must actually exchange corpus over the wire.
grep -qE 'sent=[1-9]' "$WORK_DIR/pair.diag" || {
  echo "FAIL: clean pair shipped no records" >&2
  exit 1
}

echo
echo "== federated pair under full network storm =="
"$DRILL" pair-storm "$WORK_DIR/storm" > "$WORK_DIR/storm.txt" \
  2> "$WORK_DIR/storm.diag"
cat "$WORK_DIR/storm.txt" "$WORK_DIR/storm.diag"
compare_outputs storm "$WORK_DIR/single.txt" "$WORK_DIR/storm.txt"
# Every injected failure class must have fired somewhere in the storm.
for pat in 'drops=[1-9]' 'short_writes=[1-9]' 'resets=[1-9]' \
  'partitions=[1-9]' 'reconnects=[1-9]'; do
  grep -qE "$pat" "$WORK_DIR/storm.diag" || {
    echo "FAIL: storm diagnostics missing $pat" >&2
    cat "$WORK_DIR/storm.diag" >&2
    exit 1
  }
done

echo
echo "== federated pair with mid-campaign partition-and-heal =="
"$DRILL" pair-partition "$WORK_DIR/partition" > "$WORK_DIR/partition.txt" \
  2> "$WORK_DIR/partition.diag"
cat "$WORK_DIR/partition.txt" "$WORK_DIR/partition.diag"
compare_outputs partition "$WORK_DIR/single.txt" "$WORK_DIR/partition.txt"
# The cut side must report the partition; the other side must have
# detected the silence (timeouts) and healed the session (reconnects).
grep -qE 'partition_ms=[1-9]' "$WORK_DIR/partition.diag" || {
  echo "FAIL: no partition time was recorded" >&2
  exit 1
}
grep -qE 'reconnects=[1-9]' "$WORK_DIR/partition.diag" || {
  echo "FAIL: the partition never healed (no reconnects)" >&2
  exit 1
}

echo
echo "== single wide fleet (6 workers, no network) =="
"$DRILL" single-wide "$WORK_DIR/single_wide" | tee "$WORK_DIR/single_wide.txt"

echo
echo "== 3-node star federation, virgin-map oracle, clean network =="
"$DRILL" star "$WORK_DIR/star" > "$WORK_DIR/star.txt" \
  2> "$WORK_DIR/star.diag"
cat "$WORK_DIR/star.txt" "$WORK_DIR/star.diag"
compare_outputs star "$WORK_DIR/single_wide.txt" "$WORK_DIR/star.txt"
# The star must exchange corpus and the novelty oracle must both engage
# and actually suppress coverage duplicates.
grep -qE 'sent=[1-9]' "$WORK_DIR/star.diag" || {
  echo "FAIL: star shipped no records" >&2
  exit 1
}
grep -qE 'oracle checked=[1-9]' "$WORK_DIR/star.diag" || {
  echo "FAIL: star oracle never engaged" >&2
  exit 1
}
grep -qE 'rejected=[1-9]' "$WORK_DIR/star.diag" || {
  echo "FAIL: star oracle rejected nothing (gate is a no-op)" >&2
  exit 1
}

echo
echo "== 3-node star federation under network storm =="
"$DRILL" star-storm "$WORK_DIR/star_storm" > "$WORK_DIR/star_storm.txt" \
  2> "$WORK_DIR/star_storm.diag"
cat "$WORK_DIR/star_storm.txt" "$WORK_DIR/star_storm.diag"
compare_outputs star-storm "$WORK_DIR/single_wide.txt" \
  "$WORK_DIR/star_storm.txt"
grep -qE 'reconnects=[1-9]' "$WORK_DIR/star_storm.diag" || {
  echo "FAIL: star storm forced no reconnects" >&2
  exit 1
}

echo
echo "net chaos drill PASSED"
