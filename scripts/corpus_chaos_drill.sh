#!/usr/bin/env bash
# Corpus-store chaos drill: run a persisted fleet writing into a shared
# CorpusStore while a fault storm kills instances and fails store I/O,
# then SIGKILL the whole process from inside a pack compaction (right
# after the pack rename commits, leaving a stale WAL behind). Fsck the
# wreckage, resume, and assert the recovered corpus is byte-for-byte
# identical to a chaos-free baseline: same entries, same crash-triage
# rows, same trim decisions, same canonical pack bytes.
#
# This is the strongest statement the store can make: recovery is not
# merely "consistent", it is *exact* — torn WAL tails, mid-compaction
# death, instance warm-restarts, and injected I/O faults all leave no
# trace in the final corpus. CI runs this as the corpus-chaos job.
#
# Usage: scripts/corpus_chaos_drill.sh [work-dir]   (default: mktemp -d)
# Requires the corpus_drill and statecheck binaries (`cmake --build build
# --target corpus_drill statecheck`).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
DRILL="$BUILD_DIR/src/fuzzer/corpus_drill"
STATECHECK="$BUILD_DIR/src/persist/statecheck"

WORK_DIR="${1:-$(mktemp -d)}"
BASE_DIR="$WORK_DIR/baseline"
CHAOS_DIR="$WORK_DIR/chaos"
mkdir -p "$WORK_DIR"
rm -rf "$BASE_DIR" "$CHAOS_DIR"

echo "== baseline (fault-free) =="
"$DRILL" baseline "$BASE_DIR" | tee "$WORK_DIR/baseline.txt"

echo
echo "== chaos run: instance kills + store I/O faults + compaction suicide =="
# The run mode SIGKILLs itself from the compaction hook after the pack
# rename commits, so exit status 137 is the *expected* outcome; finishing
# cleanly means the storm never reached the kill point and the drill
# proves nothing.
set +e
"$DRILL" run "$CHAOS_DIR" > "$WORK_DIR/run.txt" 2>&1
STATUS=$?
set -e
echo "chaos run exited with status $STATUS"
if [ "$STATUS" -ne 137 ]; then
  echo "FAIL: expected the mid-compaction SIGKILL (exit 137), got $STATUS" >&2
  cat "$WORK_DIR/run.txt" >&2 || true
  exit 1
fi
grep -q '^compact-kill:' "$WORK_DIR/run.txt" || {
  echo "FAIL: run died without reaching the compaction kill hook" >&2
  cat "$WORK_DIR/run.txt" >&2 || true
  exit 1
}
# The storm must have actually delivered faults before the kill — at
# least one instance SIGKILL (exercising warm restart) and at least one
# injected store I/O failure (exercising the WAL fallback paths).
grep -Eq '^compact-kill: .*kills=[1-9]' "$WORK_DIR/run.txt" || {
  echo "FAIL: no instance kills were delivered before the suicide" >&2
  cat "$WORK_DIR/run.txt" >&2 || true
  exit 1
}
grep -Eq '^compact-kill: .*io_faults=[1-9]' "$WORK_DIR/run.txt" || {
  echo "FAIL: no store I/O faults were delivered before the suicide" >&2
  cat "$WORK_DIR/run.txt" >&2 || true
  exit 1
}
grep '^compact-kill:' "$WORK_DIR/run.txt"

echo
echo "== statecheck on what the dead process left behind =="
"$STATECHECK" --fleet "$CHAOS_DIR/fleet"
"$STATECHECK" --corpus "$CHAOS_DIR"

echo
echo "== resume =="
"$DRILL" resume "$CHAOS_DIR" | tee "$WORK_DIR/resume.txt"
grep -q '^resumed: 1$' "$WORK_DIR/resume.txt" || {
  echo "FAIL: resume run did not replay the fleet journal" >&2
  exit 1
}

echo
echo "== comparing recovered corpus against the baseline =="
for key in bug_ids stack_hashes total_execs all_completed \
    corpus_entries corpus_crash_rows corpus_trim corpus_digest; do
  base_line=$(grep "^$key:" "$WORK_DIR/baseline.txt")
  res_line=$(grep "^$key:" "$WORK_DIR/resume.txt")
  if [ "$base_line" != "$res_line" ]; then
    echo "FAIL: $key diverged after chaos recovery" >&2
    echo "  baseline: $base_line" >&2
    echo "  resumed : $res_line" >&2
    exit 1
  fi
  echo "  $key ok ($base_line)"
done

echo
echo "== canonical pack byte comparison =="
cmp "$BASE_DIR/corpus.canonical" "$CHAOS_DIR/corpus.canonical" || {
  echo "FAIL: canonical corpus packs differ byte-for-byte" >&2
  exit 1
}
echo "  canonical packs byte-identical"

echo
echo "== final fsck of both stores =="
"$STATECHECK" --corpus "$BASE_DIR"
"$STATECHECK" --corpus "$CHAOS_DIR"

echo
echo "corpus chaos drill PASSED"
