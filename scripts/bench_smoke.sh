#!/usr/bin/env bash
# Bench smoke pass: run the headline benches at a reduced scale with
# machine-readable output and validate the BENCH_*.json schema. CI runs
# this to catch bench bit-rot and schema drift without paying for a
# full-scale reproduction.
#
# Usage: scripts/bench_smoke.sh [output-dir]   (default: bench-artifacts)
# Requires the bench binaries to be built (scripts/verify.sh or
# `cmake --build build --target bench_fig6_throughput
#  bench_fig9_parallel_scaling bench_tracing_fastpath`).
set -euo pipefail

cd "$(dirname "$0")/.."

OUT_DIR="${1:-bench-artifacts}"
BUILD_DIR="${BUILD_DIR:-build}"
export BIGMAP_BENCH_SCALE="${BIGMAP_BENCH_SCALE:-0.2}"

mkdir -p "$OUT_DIR"

echo "== bench_fig6_throughput (scale $BIGMAP_BENCH_SCALE) =="
"$BUILD_DIR/bench/bench_fig6_throughput" --json "$OUT_DIR/BENCH_fig6.json"

echo
echo "== bench_fig9_parallel_scaling (scale $BIGMAP_BENCH_SCALE, real threads + procs) =="
BIGMAP_REAL_THREADS=1 BIGMAP_REAL_PROCS=1 \
  "$BUILD_DIR/bench/bench_fig9_parallel_scaling" \
  --json "$OUT_DIR/BENCH_fig9.json" \
  --telemetry-dir "$OUT_DIR/telemetry_fig9"

echo
echo "== bench_tracing_fastpath (scale $BIGMAP_BENCH_SCALE) =="
"$BUILD_DIR/bench/bench_tracing_fastpath" --json "$OUT_DIR/BENCH_tracing.json"

echo
echo "== validating JSON schema and telemetry consistency =="
python3 - "$OUT_DIR" <<'EOF'
import json
import os
import sys

out_dir = sys.argv[1]
failures = []


def check(cond, msg):
    if not cond:
        failures.append(msg)


def load(name, expect_bench, expect_tables):
    path = os.path.join(out_dir, name)
    with open(path) as f:
        doc = json.load(f)
    check(doc.get("schema_version") == 1, f"{name}: schema_version != 1")
    check(doc.get("bench") == expect_bench, f"{name}: bench != {expect_bench}")
    check(isinstance(doc.get("scale"), (int, float)), f"{name}: scale missing")
    check(isinstance(doc.get("meta"), dict), f"{name}: meta missing")
    names = [t["name"] for t in doc.get("tables", [])]
    for want in expect_tables:
        check(want in names, f"{name}: missing table {want!r}")
    for t in doc.get("tables", []):
        ncols = len(t["columns"])
        check(ncols > 0, f"{name}: table {t['name']} has no columns")
        for row in t["rows"]:
            check(len(row) == ncols,
                  f"{name}: ragged row in table {t['name']}")
    return doc


fig6 = load("BENCH_fig6.json", "fig6", ["throughput", "averages"])
fig9 = load("BENCH_fig9.json", "fig9",
            ["normalized_throughput", "speedup_vs_afl",
             "real_thread_scaling", "telemetry_consistency",
             "real_process_degradation"])
tracing = load("BENCH_tracing.json", "tracing",
               ["tracing_ratio", "speedup"])

# Every report must record which whole-map kernel produced it, so perf
# trajectories in committed BENCH_*.json artifacts are attributable.
for name, doc in (("BENCH_fig6.json", fig6), ("BENCH_fig9.json", fig9),
                  ("BENCH_tracing.json", tracing)):
    kernel = doc.get("meta", {}).get("kernel")
    check(kernel in ("scalar", "swar", "sse2", "avx2"),
          f"{name}: meta.kernel is {kernel!r}, not a known kernel")

# Every real-thread run must report plot_data/fleet/supervisor exec
# agreement (the telemetry acceptance invariant).
consistency = next(t for t in fig9["tables"]
                   if t["name"] == "telemetry_consistency")
check(len(consistency["rows"]) > 0, "fig9: empty telemetry_consistency")
for row in consistency["rows"]:
    check(row[-1] == "yes",
          f"fig9: telemetry mismatch in row {row}")

# Process-fleet degradation (forked workers): budgets are deterministic —
# every fleet delivers exactly N x per-worker execs, and the chaos run
# parks exactly one worker. The throughput ratio is measured on a shared
# runner, so the smoke pass only rejects collapse (< 0.8x of the (N-1)
# baseline); the full 10% acceptance bar is asserted at normal scale.
procs = next(t for t in fig9["tables"]
             if t["name"] == "real_process_degradation")
cols = procs["columns"]
check(len(procs["rows"]) == 3, "fig9: expected 3 real-process fleet rows")
for row in procs["rows"]:
    check(row[cols.index("budget exact")] == "yes",
          f"fig9: inexact fleet exec budget in row {row}")
degraded = procs["rows"][-1]
check(degraded[cols.index("quarantined")] == "1",
      f"fig9: degraded fleet did not park exactly one worker: {degraded}")
ratio = float(degraded[cols.index("vs (N-1)")].rstrip("x"))
check(ratio >= 0.8,
      f"fig9: degraded fleet throughput collapsed ({ratio}x of baseline)")

# Fleet series snapshots must be present and monotone in execs. A bench
# that silently emits zero or one snapshot per series (e.g. a telemetry
# interval larger than the budget) must fail loudly, not pass vacuously.
def check_series(doc, name, min_series):
    series_list = doc.get("series", [])
    check(len(series_list) >= min_series,
          f"{name}: expected >= {min_series} series, got {len(series_list)}")
    for series in series_list:
        execs = [s["execs"] for s in series["snapshots"]]
        check(len(execs) >= 2,
              f"{name}: series {series['name']} has {len(execs)} snapshots "
              "(need >= 2)")
        check(execs == sorted(execs),
              f"{name}: non-monotone exec series {series['name']}")


check_series(fig9, "fig9", 2)

# Tracing fast path: every dual-mode row must run >80% of steady-state
# execs untraced and find exactly what always-trace finds.
ratio_t = next(t for t in tracing["tables"] if t["name"] == "tracing_ratio")
cols = ratio_t["columns"]
check(len(ratio_t["rows"]) >= 4, "tracing: expected >= 4 tracing_ratio rows")
for row in ratio_t["rows"]:
    pct = float(row[cols.index("Steady untraced")].rstrip("%"))
    check(pct > 80.0,
          f"tracing: steady untraced ratio {pct}% <= 80% in row {row}")
speed_t = next(t for t in tracing["tables"] if t["name"] == "speedup")
cols = speed_t["columns"]
check(len(speed_t["rows"]) == len(ratio_t["rows"]),
      "tracing: speedup/tracing_ratio row count mismatch")
for row in speed_t["rows"]:
    check(row[cols.index("Finds equal")] == "yes",
          f"tracing: dual-mode finds differ from always-trace in row {row}")
check_series(tracing, "tracing", 1)

# Emitted AFL-style trees: fuzzer_stats + plot_data for fleet and each
# instance of the n=4 runs, under <scheme>/.
tdir = os.path.join(out_dir, "telemetry_fig9")
for scheme in ("AFL", "BigMap"):
    for sub in ("fleet", "instance_0", "instance_3"):
        for fname in ("fuzzer_stats", "plot_data"):
            p = os.path.join(tdir, scheme, sub, fname)
            check(os.path.isfile(p), f"missing telemetry file {p}")

if failures:
    print("SMOKE FAILURES:")
    for f in failures:
        print(" -", f)
    sys.exit(1)
print("bench smoke OK:",
      f"fig6 tables={len(fig6['tables'])},",
      f"fig9 tables={len(fig9['tables'])},",
      f"series={len(fig9['series'])},",
      f"tracing tables={len(tracing['tables'])}")
EOF
