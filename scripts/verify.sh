#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
# This is the exact command CI runs; keep it in sync with README.md.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"
