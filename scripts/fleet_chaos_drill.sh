#!/usr/bin/env bash
# Multi-process fleet chaos drill (ISSUE acceptance: chaos). Three stages
# over the fixed fleet_drill configuration (4 forked workers, planted-bug
# target, deterministic timing):
#
#   1. baseline   — chaos-free fleet; reference find-union + exec budget
#   2. storm      — seeded kill/stall/mid-publish/mmap-fail storm; output
#                   must equal the baseline exactly
#   3. storm-run  — the storm slowed down, coordinator SIGKILLed
#                   mid-campaign, then `fleet_drill resume` replays the
#                   journal; the resumed output must also equal baseline
#
# Finishes by running statecheck --fleet over every fleet dir the drill
# produced. CI runs this as the fleet-chaos job.
#
# Usage: scripts/fleet_chaos_drill.sh [work-dir]   (default: mktemp -d)
# Requires the fleet_drill and statecheck binaries (`cmake --build build
# --target fleet_drill statecheck`).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
DRILL="$BUILD_DIR/src/fuzzer/fleet_drill"
STATECHECK="$BUILD_DIR/src/persist/statecheck"

WORK_DIR="${1:-$(mktemp -d)}"
mkdir -p "$WORK_DIR"
rm -rf "$WORK_DIR/baseline" "$WORK_DIR/storm" "$WORK_DIR/kill"

RUN_PID=""
cleanup() {
  if [ -n "$RUN_PID" ] && kill -0 "$RUN_PID" 2> /dev/null; then
    kill -9 "$RUN_PID" 2> /dev/null || true
  fi
  # The coordinator's forked workers are separate processes; -x matches
  # the exact binary name only, never this shell's own command line.
  pkill -9 -x fleet_drill 2> /dev/null || true
}
trap cleanup EXIT

# Compares the diff-friendly tail of two fleet_drill outputs; any
# divergence is a drill failure (find-union or exec budget not preserved).
compare_outputs() {
  local label=$1 base=$2 got=$3
  local key base_line got_line
  for key in bug_ids stack_hashes total_execs all_completed; do
    base_line=$(grep "^$key:" "$base")
    got_line=$(grep "^$key:" "$got")
    if [ "$base_line" != "$got_line" ]; then
      echo "FAIL: $key diverged ($label)" >&2
      echo "  baseline: $base_line" >&2
      echo "  $label: $got_line" >&2
      exit 1
    fi
    echo "  $key ok ($base_line)"
  done
}

echo "== baseline (chaos-free process fleet) =="
"$DRILL" baseline "$WORK_DIR/baseline" | tee "$WORK_DIR/baseline.txt"

echo
echo "== chaos storm (worker kills, stalls, mid-publish exits, shm fail) =="
"$DRILL" storm "$WORK_DIR/storm" | tee "$WORK_DIR/storm.txt"

echo
echo "== storm output vs baseline =="
compare_outputs storm "$WORK_DIR/baseline.txt" "$WORK_DIR/storm.txt"

echo
echo "== storm with coordinator SIGKILL mid-campaign =="
"$DRILL" storm-run "$WORK_DIR/kill" > "$WORK_DIR/kill_run.txt" 2>&1 &
RUN_PID=$!
# Wait until checkpoints exist so the kill provably lands mid-run, after
# durable state has been committed (storm-run is slowed to take ~minutes).
SAW_SNAPS=0
for _ in $(seq 1 120); do
  if compgen -G "$WORK_DIR/kill/instance-*/snap-*.bms" > /dev/null; then
    SAW_SNAPS=1
    break
  fi
  if ! kill -0 "$RUN_PID" 2> /dev/null; then
    break
  fi
  sleep 0.5
done
if [ "$SAW_SNAPS" -ne 1 ]; then
  echo "FAIL: no checkpoints appeared before the kill window closed;" >&2
  echo "      the coordinator-kill stage cannot prove anything" >&2
  cat "$WORK_DIR/kill_run.txt" >&2 || true
  exit 1
fi
sleep 2
if ! kill -0 "$RUN_PID" 2> /dev/null; then
  echo "FAIL: fleet finished before the coordinator kill; drill proves" >&2
  echo "      nothing (storm-run should take much longer than this)" >&2
  cat "$WORK_DIR/kill_run.txt" >&2
  exit 1
fi
kill -9 "$RUN_PID"
set +e
wait "$RUN_PID"
STATUS=$?
set -e
RUN_PID=""
echo "coordinator killed (exit status $STATUS)"
if [ "$STATUS" -ne 137 ]; then
  echo "FAIL: expected SIGKILL exit status 137, got $STATUS" >&2
  exit 1
fi
# The dead coordinator's forked workers are now orphans; reap them so the
# resume run owns the fleet directory exclusively.
pkill -9 -x fleet_drill 2> /dev/null || true
sleep 0.2

echo
echo "== statecheck on what the dead coordinator left behind =="
"$STATECHECK" --fleet "$WORK_DIR/kill"

echo
echo "== resume after coordinator kill =="
"$DRILL" resume "$WORK_DIR/kill" | tee "$WORK_DIR/resume.txt"
grep -q '^resumed: 1$' "$WORK_DIR/resume.txt" || {
  echo "FAIL: resume run did not replay the fleet journal" >&2
  exit 1
}

echo
echo "== resumed output vs baseline =="
compare_outputs resume "$WORK_DIR/baseline.txt" "$WORK_DIR/resume.txt"

echo
echo "== statecheck on every fleet dir the drill produced =="
for d in baseline storm kill; do
  echo "-- $WORK_DIR/$d"
  "$STATECHECK" --fleet "$WORK_DIR/$d"
done

echo
echo "fleet chaos drill PASSED"
